//! The memoizing, parallel experiment engine.
//!
//! A [`Session`] owns one pool of measurements for the whole process: a cache
//! keyed by `(program, Config)`, a bounded worker pool that fills it, and an
//! observability surface (hit/miss counters, per-measurement wall time split
//! compile vs simulate, an optional progress callback). Every table/figure in
//! [`crate::tables`] is a pure projection over session measurements, so
//! regenerating all of them — which shares the HighTag5 baseline and several
//! Table 2 configurations — compiles and simulates each point of the design
//! space exactly once:
//!
//! ```no_run
//! use tagstudy::{tables, CheckingMode, Config, Session};
//!
//! let mut session = Session::new();
//! let names = tables::default_programs();
//! let t1 = tables::table1_for(&mut session, &names)?;
//! let f1 = tables::figure1_for(&mut session, &names)?; // baseline runs reused
//! assert!(session.stats().hits > 0);
//! # Ok::<(), tagstudy::StudyError>(())
//! ```

use std::collections::{HashMap, HashSet};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::config::Config;
use crate::measure::{
    run_benchmark_timed, run_inline_timed, InlineProgram, Measurement, StudyError, Timing,
};
use crate::metrics::{names, MetricsRegistry, DURATION_BUCKETS, OCCUPANCY_BUCKETS};
use crate::trace::{SpanId, SpanRecord, TraceContext, Tracer};

/// A resolved program name: either one of the ten compiled-in paper
/// benchmarks, or an [`InlineProgram`] registered on this session.
#[derive(Clone, Copy)]
enum Source<'a> {
    Builtin(&'static programs::Benchmark),
    Inline(&'a InlineProgram),
}

/// A progress event, delivered to the session's callback as measurements move
/// through the engine. Callbacks run on worker threads; keep them cheap.
#[derive(Debug, Clone)]
pub enum Progress {
    /// A requested measurement was served from the cache.
    Hit {
        /// Benchmark name.
        program: String,
        /// Configuration requested.
        config: Config,
    },
    /// A compile + simulate started on a worker.
    Started {
        /// Benchmark name.
        program: String,
        /// Configuration being measured.
        config: Config,
    },
    /// A measurement finished and entered the cache.
    Finished {
        /// Benchmark name.
        program: String,
        /// Configuration measured.
        config: Config,
        /// Where the wall time went.
        timing: Timing,
    },
}

/// Aggregate counters for one [`Session`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served from the cache (including duplicates within one batch).
    pub hits: u64,
    /// Measurements actually compiled and simulated.
    pub misses: u64,
    /// Total wall time spent compiling.
    pub compile_time: Duration,
    /// Total wall time spent simulating.
    pub sim_time: Duration,
}

impl SessionStats {
    /// Total requests the session has answered.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total wall time spent measuring (compile + simulate, summed over
    /// workers — parallel batches finish in less elapsed time than this).
    pub fn work_time(&self) -> Duration {
        self.compile_time + self.sim_time
    }
}

type ProgressFn = Arc<dyn Fn(&Progress) + Send + Sync>;
type WritebackFn = Arc<dyn Fn(&Measurement, &Timing) + Send + Sync>;
type MeasureResult = Result<(Measurement, Timing), StudyError>;

/// The memoizing, parallel experiment engine. See the [module docs](self).
pub struct Session {
    cache: HashMap<(String, Config), (Measurement, Timing)>,
    /// Caller-registered inline programs, consulted before the built-in
    /// benchmark registry when a name is resolved.
    sources: HashMap<String, InlineProgram>,
    parallelism: NonZeroUsize,
    progress: Option<ProgressFn>,
    writeback: Option<WritebackFn>,
    stats: SessionStats,
    /// The structured metrics/event registry every lifecycle event flows
    /// through (see [`crate::metrics`]); `Progress` is an adapter fed from
    /// the same spine. Behind a mutex because workers report through `&self`.
    metrics: Mutex<MetricsRegistry>,
    /// Measurements currently on a worker (pool-occupancy observations).
    inflight: AtomicUsize,
    /// Optional flight recorder (see [`crate::trace`]). When attached *and* a
    /// trace context is active, lifecycle events additionally synthesize
    /// spans; otherwise the tracing path is a single `Option` check.
    tracer: Option<Tracer>,
    /// The trace the current batch's spans attach to (set by
    /// [`Session::begin_trace`], cleared by [`Session::end_trace`]). Workers
    /// read it through `&self` while a batch is in flight; it only changes
    /// between batches, under the caller's `&mut`.
    trace_ctx: Option<TraceContext>,
    /// Cache keys that came from [`Session::seed`] (a persistent store)
    /// rather than a measurement in this process — hits on them span as
    /// `store.read`, hits on in-process results as `cache.read`.
    seeded: HashSet<(String, Config)>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("cached", &self.cache.len())
            .field("parallelism", &self.parallelism)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A session with an empty cache and one worker per available core.
    pub fn new() -> Session {
        let parallelism =
            std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(4).expect("non-zero"));
        Session {
            cache: HashMap::new(),
            sources: HashMap::new(),
            parallelism,
            progress: None,
            writeback: None,
            stats: SessionStats::default(),
            metrics: Mutex::new(MetricsRegistry::new()),
            inflight: AtomicUsize::new(0),
            tracer: None,
            trace_ctx: None,
            seeded: HashSet::new(),
        }
    }

    /// A session that measures strictly serially (one worker, no threads) —
    /// useful as a determinism reference and in constrained environments.
    pub fn serial() -> Session {
        Session::new().with_parallelism(NonZeroUsize::new(1).expect("non-zero"))
    }

    /// Bound the worker pool to `parallelism` workers.
    pub fn with_parallelism(mut self, parallelism: NonZeroUsize) -> Session {
        self.parallelism = parallelism;
        self
    }

    /// Install a progress callback. It is invoked from worker threads while a
    /// batch is in flight, so it must be `Send + Sync` and should be cheap.
    pub fn with_progress(mut self, f: impl Fn(&Progress) + Send + Sync + 'static) -> Session {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Install a persistence hook: `f` is called once for every *fresh*
    /// measurement the moment it enters the cache (never for cache hits,
    /// seeded entries, or failed measurements). A daemon wires this to a
    /// durable result store so every computed point is written through.
    pub fn with_writeback(
        mut self,
        f: impl Fn(&Measurement, &Timing) + Send + Sync + 'static,
    ) -> Session {
        self.writeback = Some(Arc::new(f));
        self
    }

    /// Attach a flight recorder. Spans are only synthesized while a trace
    /// context is active (see [`Session::begin_trace`]), and never alter a
    /// measurement: they wrap the same wall-clock split [`Timing`] already
    /// records, so `Stats` and outputs stay byte-identical (test-asserted).
    pub fn with_tracer(mut self, tracer: Tracer) -> Session {
        self.tracer = Some(tracer);
        self
    }

    /// Activate `ctx` as the trace the next batch's spans attach to. The
    /// daemon calls this (under its session lock) before `measure_many`, so
    /// every cache-read / measure / compile / simulate span of the batch
    /// parents under the request's batch span.
    pub fn begin_trace(&mut self, ctx: TraceContext) {
        self.trace_ctx = Some(ctx);
    }

    /// Deactivate the current trace context (see [`Session::begin_trace`]).
    pub fn end_trace(&mut self) {
        self.trace_ctx = None;
    }

    /// The session's counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The configured worker-pool bound.
    pub fn parallelism(&self) -> NonZeroUsize {
        self.parallelism
    }

    /// Number of distinct `(program, Config)` points measured so far.
    pub fn cached_measurements(&self) -> usize {
        self.cache.len()
    }

    /// Whether `(program, config)` is already in the cache (a request for it
    /// would be answered without simulating).
    pub fn contains(&self, program: &str, config: Config) -> bool {
        self.cache.contains_key(&(program.to_string(), config))
    }

    /// Preload one measurement into the cache — the warm-start path for a
    /// persistent result store. The entry is answered like any cache hit but
    /// is counted separately (the `session_seeded_total` counter), so "zero
    /// simulations since restart" is provable from the metrics alone.
    ///
    /// Returns `false` (and changes nothing) if the point is already cached;
    /// the writeback hook is *not* invoked — the store already has it.
    pub fn seed(&mut self, measurement: Measurement, timing: Timing) -> bool {
        let key = (measurement.program.clone(), measurement.config);
        if self.cache.contains_key(&key) {
            return false;
        }
        {
            let mut m = self.lock_metrics();
            m.inc(names::SEEDED);
            m.event(
                "cache_seeded",
                &[("program", &key.0), ("config", &key.1.to_string())],
            );
        }
        self.seeded.insert(key.clone());
        self.cache.insert(key, (measurement, timing));
        true
    }

    /// Register an [`InlineProgram`] under `name`, making it measurable,
    /// cacheable, and compilable exactly like a built-in benchmark. A
    /// registered name shadows a built-in of the same name (callers that want
    /// no ambiguity should use a distinct namespace, as the daemon does with
    /// its content-addressed `inline:<hash>` names).
    ///
    /// Re-registering the identical program is a no-op and returns `false`.
    /// Re-registering a *different* program under an existing name replaces
    /// it and evicts every cached measurement for that name — the cache is
    /// keyed by name, and stale results must not outlive their source.
    pub fn register_source(&mut self, name: impl Into<String>, program: InlineProgram) -> bool {
        let name = name.into();
        if self.sources.get(&name) == Some(&program) {
            return false;
        }
        let replaced = self.sources.insert(name.clone(), program).is_some();
        if replaced {
            self.cache.retain(|(cached, _), _| *cached != name);
            self.seeded.retain(|(cached, _)| *cached != name);
        }
        let mut m = self.lock_metrics();
        m.inc(names::SOURCES_REGISTERED);
        m.event(
            "source_registered",
            &[("program", &name), ("replaced", &replaced.to_string())],
        );
        true
    }

    /// Whether `name` is currently answerable: a registered inline source or
    /// a built-in benchmark.
    pub fn has_source(&self, name: &str) -> bool {
        self.sources.contains_key(name) || programs::by_name(name).is_some()
    }

    /// Resolve a program name: registered inline sources first, then the
    /// built-in benchmark registry.
    fn resolve(&self, name: &str) -> Result<Source<'_>, StudyError> {
        if let Some(p) = self.sources.get(name) {
            return Ok(Source::Inline(p));
        }
        programs::by_name(name)
            .map(Source::Builtin)
            .ok_or_else(|| StudyError::UnknownProgram(name.to_string()))
    }

    /// Iterate over every cached measurement and its timing, in no particular
    /// order.
    pub fn measurements(&self) -> impl Iterator<Item = (&Measurement, &Timing)> {
        self.cache.values().map(|(m, t)| (m, t))
    }

    /// Measure one `(program, config)` point, reusing the cache.
    ///
    /// # Errors
    ///
    /// Any [`StudyError`] the underlying measurement raises.
    pub fn measure(&mut self, program: &str, config: Config) -> Result<Measurement, StudyError> {
        self.measure_many(&[(program, config)])
            .map(|mut v| v.pop().expect("one result per request"))
    }

    /// Measure every `(program, config)` request of a batch, returning results
    /// in request order. Cached points are served without work; uncached
    /// points are deduplicated (a point requested twice in one batch is
    /// measured once) and measured on the bounded worker pool.
    ///
    /// # Errors
    ///
    /// If any measurement fails, *all* failures of the batch are collected and
    /// collapsed via [`StudyError::Multiple`]; a panicking worker surfaces as
    /// a [`StudyError::Sim`] for its program, never as a harness panic.
    pub fn measure_many(
        &mut self,
        requests: &[(&str, Config)],
    ) -> Result<Vec<Measurement>, StudyError> {
        // Partition into cache hits and deduplicated pending work.
        let mut pending: Vec<(String, Config)> = Vec::new();
        for (name, config) in requests {
            let key = (name.to_string(), *config);
            if self.cache.contains_key(&key) {
                self.stats.hits += 1;
                self.emit(&Progress::Hit {
                    program: key.0,
                    config: *config,
                });
            } else if pending.contains(&key) {
                // In-flight dedup: a second request of the same point rides
                // along with the first and counts as a hit (and is reported
                // as one, so every request produces exactly one event).
                self.stats.hits += 1;
                self.emit(&Progress::Hit {
                    program: key.0,
                    config: *config,
                });
            } else {
                pending.push(key);
            }
        }

        let mut errors: Vec<StudyError> = Vec::new();
        if !pending.is_empty() {
            for (key, result) in pending.iter().zip(self.run_pool(&pending)) {
                match result {
                    Ok((measurement, timing)) => {
                        self.stats.misses += 1;
                        self.stats.compile_time += timing.compile;
                        self.stats.sim_time += timing.simulate;
                        if let Some(wb) = &self.writeback {
                            wb(&measurement, &timing);
                        }
                        self.cache.insert(key.clone(), (measurement, timing));
                    }
                    Err(e) => {
                        let mut m = self.lock_metrics();
                        m.inc(names::FAILURES);
                        m.event(
                            "measure_failed",
                            &[
                                ("program", &key.0),
                                ("config", &key.1.to_string()),
                                ("error", &e.to_string()),
                            ],
                        );
                        drop(m);
                        errors.push(e);
                    }
                }
            }
        }
        if !errors.is_empty() {
            return Err(StudyError::from_many(errors));
        }

        Ok(requests
            .iter()
            .map(|(name, config)| {
                self.cache
                    .get(&(name.to_string(), *config))
                    .map(|(m, _)| m.clone())
                    .expect("every successful request is cached")
            })
            .collect())
    }

    /// Measure every program of `names` under one `config`, in `names` order.
    ///
    /// # Errors
    ///
    /// As [`Session::measure_many`].
    pub fn measure_set(
        &mut self,
        names: &[&str],
        config: Config,
    ) -> Result<Vec<Measurement>, StudyError> {
        let requests: Vec<(&str, Config)> = names.iter().map(|n| (*n, config)).collect();
        self.measure_many(&requests)
    }

    /// Measure without touching the cache or counters: always compiles and
    /// simulates. This is the right primitive for timing harnesses (criterion
    /// benches) where serving a memoized result would time the cache instead
    /// of the toolchain.
    ///
    /// # Errors
    ///
    /// Any [`StudyError`] the underlying measurement raises.
    pub fn measure_uncached(
        &self,
        program: &str,
        config: Config,
    ) -> Result<Measurement, StudyError> {
        match self.resolve(program)? {
            Source::Builtin(b) => crate::measure::run_benchmark(b, &config),
            Source::Inline(p) => run_inline_timed(program, p, &config).map(|(m, _)| m),
        }
    }

    /// Compile a named program (built-in benchmark or registered inline
    /// source) under `config` without running it. The conformance harness
    /// uses this to get at the executable image both executors will
    /// interpret.
    ///
    /// # Errors
    ///
    /// [`StudyError::UnknownProgram`] or [`StudyError::Compile`].
    pub fn compile_program(
        &self,
        program: &str,
        config: Config,
    ) -> Result<lisp::CompiledProgram, StudyError> {
        let opts = config.to_options();
        match self.resolve(program)? {
            Source::Builtin(b) => b.compile(&opts),
            Source::Inline(p) => p.compile(&opts),
        }
        .map_err(|e| StudyError::Compile {
            program: program.to_string(),
            message: e.to_string(),
        })
    }

    /// Run a named benchmark with the retired-instruction trace enabled (see
    /// [`mipsx::trace`]), validating its output like any other measurement.
    ///
    /// Trace-enabled runs are never cached: the whole point is to re-execute
    /// under observation, and the observer itself is stateful.
    ///
    /// # Errors
    ///
    /// Any [`StudyError`]; an observer that breaks out of the run surfaces as
    /// [`StudyError::Sim`].
    pub fn run_observed<O: mipsx::trace::Observer>(
        &self,
        program: &str,
        config: Config,
        fuel: u64,
        obs: &mut O,
    ) -> Result<Measurement, StudyError> {
        let compiled = self.compile_program(program, config)?;
        self.run_compiled_observed(program, config, &compiled, fuel, obs)
    }

    fn run_compiled_observed<O: mipsx::trace::Observer>(
        &self,
        program: &str,
        config: Config,
        compiled: &lisp::CompiledProgram,
        fuel: u64,
        obs: &mut O,
    ) -> Result<Measurement, StudyError> {
        let outcome =
            lisp::run_observed_with(compiled, config.backend, fuel, obs).map_err(|e| {
                StudyError::Sim {
                    program: program.to_string(),
                    message: e.to_string(),
                }
            })?;
        let expected: Option<&str> = match self.resolve(program).expect("compiled above") {
            Source::Builtin(b) => Some(b.expected_output),
            Source::Inline(p) => p.expected_output.as_deref(),
        };
        let output_ok = expected.is_none_or(|want| outcome.output == want);
        if outcome.halt_code != lisp::exit_code::OK || !output_ok {
            return Err(StudyError::WrongOutput {
                program: program.to_string(),
                config: config.to_string(),
                got: format!("halt={} {:?}", outcome.halt_code, outcome.output),
            });
        }
        Ok(Measurement {
            program: program.to_string(),
            config,
            stats: outcome.stats,
            compile: compiled.stats,
            halt_code: outcome.halt_code,
            output: outcome.output,
        })
    }

    /// Compile `program` under `config` and run it with a cycle-attribution
    /// [`mipsx::Profiler`] attached, validating the output like any other
    /// measurement. Returns the measurement together with the profiler, whose
    /// books are guaranteed to reconcile with `measurement.stats` (the
    /// profiler asserts this property; see [`mipsx::Profiler::reconcile`]).
    ///
    /// Profiled runs are never cached — the observer is the point.
    ///
    /// # Errors
    ///
    /// Any [`StudyError`] compilation or simulation raises.
    pub fn profile(
        &self,
        program: &str,
        config: Config,
        fuel: u64,
    ) -> Result<(Measurement, mipsx::Profiler), StudyError> {
        self.profile_with_stalls(program, config, fuel)
            .map(|(m, p, _)| (m, p))
    }

    /// [`Session::profile`], additionally attaching a
    /// [`mipsx::TimingModel`] when `config.timing` asks for one. The stall
    /// breakdown lands in `measurement.stats.timing`, and the per-function
    /// stall attribution (cycles lost to icache/dcache/mispredict/load-use,
    /// by function) is returned alongside the profiler; under the ideal model
    /// it is `None` and the run is exactly [`Session::profile`].
    ///
    /// # Errors
    ///
    /// Any [`StudyError`] compilation or simulation raises.
    pub fn profile_with_stalls(
        &self,
        program: &str,
        config: Config,
        fuel: u64,
    ) -> Result<(Measurement, mipsx::Profiler, Option<Vec<mipsx::FuncStalls>>), StudyError> {
        self.emit(&Progress::Started {
            program: program.to_string(),
            config,
        });
        let t0 = std::time::Instant::now();
        let compiled = self.compile_program(program, config)?;
        let compile = t0.elapsed();
        let profiler = mipsx::Profiler::new(&compiled.program);
        let t1 = std::time::Instant::now();
        let (measurement, profiler, stalls) = if config.timing.is_ideal() {
            let mut profiler = profiler;
            let measurement =
                self.run_compiled_observed(program, config, &compiled, fuel, &mut profiler)?;
            (measurement, profiler, None)
        } else {
            // Both observers ride one run: the profiler attributes
            // architectural cycles, the timing model attributes stalls, and
            // they see the identical retirement stream.
            let mut obs =
                mipsx::trace::Chain::new(profiler, mipsx::TimingModel::new(config.timing));
            let mut measurement =
                self.run_compiled_observed(program, config, &compiled, fuel, &mut obs)?;
            let mipsx::trace::Chain {
                first: profiler,
                second: model,
            } = obs;
            measurement.stats.timing = Some(model.finish());
            let stalls = model.by_function(&compiled.program.symtab);
            (measurement, profiler, Some(stalls))
        };
        self.emit(&Progress::Finished {
            program: program.to_string(),
            config,
            timing: Timing {
                compile,
                simulate: t1.elapsed(),
            },
        });
        Ok((measurement, profiler, stalls))
    }

    /// Render the observability surface as a short plain-text summary: cache
    /// counters, the compile/simulate wall-time split, and the slowest
    /// measured points.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "session: {} measurements cached, {} hits / {} misses ({} requests), workers {}",
            self.cache.len(),
            s.hits,
            s.misses,
            s.requests(),
            self.parallelism
        );
        let _ = writeln!(
            out,
            "  work time {:.2?} = compile {:.2?} + simulate {:.2?}",
            s.work_time(),
            s.compile_time,
            s.sim_time
        );
        let mut slowest: Vec<(&Measurement, &Timing)> = self.measurements().collect();
        slowest.sort_by_key(|(_, t)| std::cmp::Reverse(t.total()));
        for (m, t) in slowest.iter().take(3) {
            let _ = writeln!(
                out,
                "  slowest: {}/{} {:.2?} (compile {:.2?}, simulate {:.2?})",
                m.program,
                m.config,
                t.total(),
                t.compile,
                t.simulate
            );
        }
        out
    }

    /// Lock the metrics registry, riding over a poisoned lock (a panicking
    /// progress callback must not take observability down with it).
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the session's metrics registry: every counter, histogram
    /// and event recorded so far, plus point-in-time gauges (configured
    /// workers, peak occupancy, cache size).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.lock_metrics().clone();
        m.set_gauge(names::WORKERS_CONFIGURED, self.parallelism.get() as f64);
        m.set_gauge(names::CACHED_MEASUREMENTS, self.cache.len() as f64);
        m
    }

    /// The metrics snapshot serialized as JSON (see
    /// [`MetricsRegistry::to_json`]).
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// The metrics snapshot in Prometheus text-exposition format (see
    /// [`MetricsRegistry::to_prometheus`]).
    pub fn metrics_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// Synthesize trace spans for one lifecycle event, when a tracer and an
    /// active trace context are both present. A cache hit becomes a point
    /// `store.read` (seeded from the persistent store) or `cache.read`
    /// (measured earlier in-process) span; a finished measurement becomes a
    /// `measure` span with `compile` and `simulate` children cut from the
    /// same [`Timing`] split the metrics already record. Returns the spans
    /// recorded so [`Session::emit`] can mirror them onto the event spine.
    fn record_spans(&self, event: &Progress) -> Vec<SpanRecord> {
        let (Some(tracer), Some(ctx)) = (&self.tracer, self.trace_ctx) else {
            return Vec::new();
        };
        let mut spans = Vec::new();
        let mut push = |tracer: &Tracer, span: SpanRecord| {
            tracer.record(span.clone());
            spans.push(span);
        };
        match event {
            Progress::Hit { program, config } => {
                let seeded = self.seeded.contains(&(program.clone(), *config));
                push(
                    tracer,
                    SpanRecord {
                        trace: ctx.trace,
                        id: SpanId::generate(),
                        parent: Some(ctx.parent),
                        name: if seeded { "store.read" } else { "cache.read" }.to_string(),
                        component: "session".to_string(),
                        start_us: tracer.now_us(),
                        dur_us: 0,
                        labels: vec![
                            ("program".to_string(), program.clone()),
                            ("config".to_string(), config.to_string()),
                        ],
                    },
                );
            }
            // Started carries no duration; the whole measurement spans at
            // Finished, back-dated from the recorded wall-time split.
            Progress::Started { .. } => {}
            Progress::Finished {
                program,
                config,
                timing,
            } => {
                let end = tracer.now_us();
                let compile_us = timing.compile.as_micros() as u64;
                let simulate_us = timing.simulate.as_micros() as u64;
                let start = end.saturating_sub(compile_us + simulate_us);
                let measure_id = SpanId::generate();
                let labels = vec![
                    ("program".to_string(), program.clone()),
                    ("config".to_string(), config.to_string()),
                ];
                push(
                    tracer,
                    SpanRecord {
                        trace: ctx.trace,
                        id: measure_id,
                        parent: Some(ctx.parent),
                        name: "measure".to_string(),
                        component: "session".to_string(),
                        start_us: start,
                        dur_us: compile_us + simulate_us,
                        labels: labels.clone(),
                    },
                );
                push(
                    tracer,
                    SpanRecord {
                        trace: ctx.trace,
                        id: SpanId::generate(),
                        parent: Some(measure_id),
                        name: "compile".to_string(),
                        component: "session".to_string(),
                        start_us: start,
                        dur_us: compile_us,
                        labels: labels.clone(),
                    },
                );
                push(
                    tracer,
                    SpanRecord {
                        trace: ctx.trace,
                        id: SpanId::generate(),
                        parent: Some(measure_id),
                        name: "simulate".to_string(),
                        component: "session".to_string(),
                        start_us: start + compile_us,
                        dur_us: simulate_us,
                        labels,
                    },
                );
            }
        }
        spans
    }

    /// The instrumentation spine: record the event in the metrics registry,
    /// then hand it to the optional [`Progress`] adapter.
    fn emit(&self, event: &Progress) {
        let spans = self.record_spans(event);
        {
            let mut m = self.lock_metrics();
            match event {
                Progress::Hit { program, config } => {
                    m.inc(names::REQUESTS);
                    m.inc(names::CACHE_HITS);
                    m.event(
                        "cache_hit",
                        &[("program", program), ("config", &config.to_string())],
                    );
                }
                Progress::Started { program, config } => {
                    m.inc(names::REQUESTS);
                    m.inc(names::CACHE_MISSES);
                    m.event(
                        "measure_started",
                        &[("program", program), ("config", &config.to_string())],
                    );
                }
                Progress::Finished {
                    program,
                    config,
                    timing,
                } => {
                    let compile = timing.compile.as_secs_f64();
                    let simulate = timing.simulate.as_secs_f64();
                    m.observe(names::COMPILE_SECONDS, DURATION_BUCKETS, compile);
                    m.observe(names::SIMULATE_SECONDS, DURATION_BUCKETS, simulate);
                    m.event(
                        "measure_finished",
                        &[
                            ("program", program),
                            ("config", &config.to_string()),
                            ("compile_s", &compile.to_string()),
                            ("simulate_s", &simulate.to_string()),
                        ],
                    );
                }
            }
            // Mirror synthesized spans onto the event spine, so the machine-
            // readable log carries the same trace/span ids as the recorder.
            for s in &spans {
                let program = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "program")
                    .map_or("", |(_, v)| v.as_str());
                m.event(
                    "span_end",
                    &[
                        ("program", program),
                        ("span_name", &s.name),
                        ("component", &s.component),
                        ("trace", &s.trace.to_string()),
                        ("span", &s.id.to_string()),
                        ("dur_us", &s.dur_us.to_string()),
                    ],
                );
            }
        }
        if let Some(f) = &self.progress {
            f(event);
        }
    }

    /// Run `jobs` on at most `self.parallelism` workers, returning results in
    /// job order. Worker panics are converted into per-program errors.
    fn run_pool(&self, jobs: &[(String, Config)]) -> Vec<MeasureResult> {
        let workers = jobs.len().min(self.parallelism.get());
        if workers <= 1 {
            return jobs.iter().map(|job| self.run_one(job)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<MeasureResult>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    *slots[i].lock().expect("result slot") = Some(self.run_one(job));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    fn run_one(&self, (name, config): &(String, Config)) -> MeasureResult {
        let source = self.resolve(name)?;
        let depth = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut m = self.lock_metrics();
            m.observe(names::POOL_OCCUPANCY, OCCUPANCY_BUCKETS, depth as f64);
            m.gauge_max(names::POOL_PEAK_OCCUPANCY, depth as f64);
        }
        let result = self.run_one_inner(name, config, source);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn run_one_inner(&self, name: &str, config: &Config, source: Source<'_>) -> MeasureResult {
        // The Started emit runs inside the panic guard too: a misbehaving
        // progress callback surfaces as this measurement's error, not as a
        // harness abort.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.emit(&Progress::Started {
                program: name.to_owned(),
                config: *config,
            });
            match source {
                Source::Builtin(b) => run_benchmark_timed(b, config),
                Source::Inline(p) => run_inline_timed(name, p, config),
            }
        }))
        .unwrap_or_else(|payload| {
            Err(StudyError::Sim {
                program: name.to_owned(),
                message: format!("measurement worker panicked: {}", panic_text(&payload)),
            })
        });
        if let Ok((_, timing)) = &result {
            self.emit(&Progress::Finished {
                program: name.to_owned(),
                config: *config,
                timing: *timing,
            });
        }
        result
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisp::CheckingMode;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn measure_hits_cache_on_second_request() {
        let mut s = Session::serial();
        let cfg = Config::baseline(CheckingMode::None);
        let a = s.measure("frl", cfg).unwrap();
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().hits, 0);
        let b = s.measure("frl", cfg).unwrap();
        assert_eq!(s.stats().misses, 1, "no recompute");
        assert_eq!(s.stats().hits, 1);
        assert_eq!(a.stats, b.stats);
        assert!(s.stats().work_time() > Duration::ZERO);
    }

    #[test]
    fn batch_duplicates_measure_once() {
        let mut s = Session::new();
        let cfg = Config::baseline(CheckingMode::None);
        let out = s
            .measure_many(&[("frl", cfg), ("frl", cfg), ("frl", cfg)])
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(s.stats().misses, 1, "in-flight dedup");
        assert_eq!(s.stats().hits, 2);
        assert_eq!(out[0].stats, out[1].stats);
    }

    #[test]
    fn failures_are_collected_not_raced() {
        let mut s = Session::new();
        let cfg = Config::baseline(CheckingMode::None);
        let err = s
            .measure_many(&[("frl", cfg), ("nope", cfg), ("nada", cfg)])
            .unwrap_err();
        match err {
            StudyError::Multiple(errors) => {
                assert_eq!(errors.len(), 2, "both failures retained: {errors:?}");
                assert!(errors
                    .iter()
                    .all(|e| matches!(e, StudyError::UnknownProgram(_))));
            }
            other => panic!("expected Multiple, got {other}"),
        }
        // The successful sibling still entered the cache.
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.cached_measurements(), 1);
    }

    #[test]
    fn progress_callback_sees_lifecycle() {
        let started = Arc::new(AtomicU64::new(0));
        let finished = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let (s2, f2, h2) = (started.clone(), finished.clone(), hits.clone());
        let mut s = Session::new().with_progress(move |p| match p {
            Progress::Started { .. } => {
                s2.fetch_add(1, Ordering::Relaxed);
            }
            Progress::Finished { timing, .. } => {
                assert!(timing.total() > Duration::ZERO);
                f2.fetch_add(1, Ordering::Relaxed);
            }
            Progress::Hit { .. } => {
                h2.fetch_add(1, Ordering::Relaxed);
            }
        });
        let cfg = Config::baseline(CheckingMode::None);
        s.measure("frl", cfg).unwrap();
        s.measure("frl", cfg).unwrap();
        assert_eq!(started.load(Ordering::Relaxed), 1);
        assert_eq!(finished.load(Ordering::Relaxed), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    /// A panicking worker (here: a progress callback that panics for one
    /// program) is contained by the pool and reported alongside ordinary
    /// failures in the same [`StudyError::Multiple`].
    #[test]
    fn worker_panic_is_collected_into_multiple() {
        let mut s = Session::new().with_progress(|p| {
            if let Progress::Started { program, .. } = p {
                assert!(program != "trav", "callback rejects trav");
            }
        });
        let cfg = Config::baseline(CheckingMode::None);
        let err = s
            .measure_many(&[("trav", cfg), ("nope", cfg), ("frl", cfg)])
            .unwrap_err();
        match err {
            StudyError::Multiple(errors) => {
                assert_eq!(errors.len(), 2, "panic + unknown program: {errors:?}");
                assert!(
                    errors.iter().any(|e| matches!(
                        e,
                        StudyError::Sim { program, message }
                            if program == "trav" && message.contains("panicked")
                    )),
                    "panic not surfaced: {errors:?}"
                );
                assert!(
                    errors
                        .iter()
                        .any(|e| matches!(e, StudyError::UnknownProgram(p) if p == "nope")),
                    "unknown program lost: {errors:?}"
                );
            }
            other => panic!("expected Multiple, got {other}"),
        }
        // The healthy sibling still completed and entered the cache.
        assert_eq!(s.cached_measurements(), 1);
    }

    /// Hit/miss counters across overlapping batches match the hand-computed
    /// plan: first occurrence of each (program, config) is a miss, everything
    /// after — including in-batch duplicates — is a hit.
    #[test]
    fn warm_cache_counters_match_hand_computed_plan() {
        let mut s = Session::serial();
        let none = Config::baseline(CheckingMode::None);
        let full = Config::baseline(CheckingMode::Full);

        // Batch 1: two fresh points.
        s.measure_many(&[("frl", none), ("trav", none)]).unwrap();
        assert_eq!((s.stats().misses, s.stats().hits), (2, 0));

        // Batch 2: one warm point, one fresh point requested twice, one warm.
        s.measure_many(&[("frl", none), ("frl", full), ("trav", none), ("frl", full)])
            .unwrap();
        assert_eq!((s.stats().misses, s.stats().hits), (3, 3));

        // A single warm request afterwards.
        s.measure("frl", full).unwrap();
        assert_eq!((s.stats().misses, s.stats().hits), (3, 4));
        assert_eq!(s.stats().requests(), 7);
        assert_eq!(s.cached_measurements(), 3);
    }

    /// The persistence hooks: a writeback fires exactly once per fresh
    /// measurement, a seeded entry is served as a hit without simulating, and
    /// seeding neither double-inserts nor re-triggers the writeback.
    #[test]
    fn seed_and_writeback_round_trip() {
        let cfg = Config::baseline(CheckingMode::None);
        let written: Arc<Mutex<Vec<(Measurement, Timing)>>> = Arc::default();
        let sink = written.clone();
        let mut s = Session::serial()
            .with_writeback(move |m, t| sink.lock().unwrap().push((m.clone(), *t)));

        assert!(!s.contains("frl", cfg));
        s.measure("frl", cfg).unwrap();
        s.measure("frl", cfg).unwrap(); // hit: no second writeback
        assert!(s.contains("frl", cfg));
        let persisted = written.lock().unwrap().clone();
        assert_eq!(persisted.len(), 1, "one writeback per fresh measurement");

        // A second session warm-started from the persisted entry answers the
        // same request with zero misses, and the metrics prove it.
        let (m, t) = persisted.into_iter().next().unwrap();
        let mut warm = Session::serial();
        assert!(warm.seed(m.clone(), t));
        assert!(!warm.seed(m, t), "double seed is a no-op");
        let again = warm.measure("frl", cfg).unwrap();
        assert_eq!(again.stats, warm.cache[&("frl".to_string(), cfg)].0.stats);
        assert_eq!(warm.stats().misses, 0, "seeded entry served without work");
        assert_eq!(warm.stats().hits, 1);
        assert_eq!(warm.metrics().counter(names::SEEDED), 1);
    }

    /// Inline sources flow through the same cache, counters, and writeback
    /// as built-in benchmarks, and carry their pinned output when given one.
    #[test]
    fn inline_sources_measure_like_benchmarks() {
        let cfg = Config::baseline(CheckingMode::Full);
        let mut s = Session::serial();
        assert!(!s.has_source("tiny"));
        assert!(s.register_source(
            "tiny",
            InlineProgram::new("(print (plus 1 2))").with_expected_output("3\n"),
        ));
        assert!(s.has_source("tiny"));
        assert!(
            !s.register_source(
                "tiny",
                InlineProgram::new("(print (plus 1 2))").with_expected_output("3\n"),
            ),
            "identical re-registration is a no-op"
        );
        let m = s.measure("tiny", cfg).unwrap();
        assert_eq!(m.program, "tiny");
        assert!(m.stats.cycles > 0);
        s.measure("tiny", cfg).unwrap();
        assert_eq!((s.stats().misses, s.stats().hits), (1, 1));
        assert_eq!(s.metrics().counter(names::SOURCES_REGISTERED), 1);

        // Uncached and compile-only paths resolve the same name.
        s.measure_uncached("tiny", cfg).unwrap();
        let compiled = s.compile_program("tiny", cfg).unwrap();
        assert!(compiled.stats.object_words > 0);
    }

    /// A wrong pinned output is a [`StudyError::WrongOutput`]; no pinned
    /// output validates the exit code only.
    #[test]
    fn inline_expected_output_is_enforced_when_pinned() {
        let cfg = Config::baseline(CheckingMode::Full);
        let mut s = Session::serial();
        s.register_source(
            "claims-four",
            InlineProgram::new("(print (plus 1 2))").with_expected_output("4\n"),
        );
        s.register_source("unpinned", InlineProgram::new("(print (plus 1 2))"));
        let err = s.measure("claims-four", cfg).unwrap_err();
        assert!(
            matches!(&err, StudyError::WrongOutput { program, .. } if program == "claims-four"),
            "{err}"
        );
        s.measure("unpinned", cfg).unwrap();
    }

    /// Replacing a registered source under the same name evicts its cached
    /// measurements, so a stale result can never outlive its source.
    #[test]
    fn reregistering_a_different_source_evicts_the_cache() {
        let cfg = Config::baseline(CheckingMode::Full);
        let mut s = Session::serial();
        s.register_source("shifty", InlineProgram::new("(print (plus 1 2))"));
        s.measure("shifty", cfg).unwrap();
        assert!(s.contains("shifty", cfg));
        assert!(s.register_source("shifty", InlineProgram::new("(print (plus 2 3))")));
        assert!(!s.contains("shifty", cfg), "stale measurement evicted");
        s.measure("shifty", cfg).unwrap();
        assert_eq!(s.stats().misses, 2, "replacement re-measured");
    }

    /// An inline source that fails to compile surfaces as
    /// [`StudyError::Compile`] with the registered name, and an unknown name
    /// is still [`StudyError::UnknownProgram`].
    #[test]
    fn inline_compile_errors_carry_the_registered_name() {
        let cfg = Config::baseline(CheckingMode::Full);
        let mut s = Session::serial();
        s.register_source("broken", InlineProgram::new("(print (no-such-fn 1))"));
        let err = s.measure("broken", cfg).unwrap_err();
        assert!(
            matches!(&err, StudyError::Compile { program, .. } if program == "broken"),
            "{err}"
        );
        let err = s.measure("never-registered", cfg).unwrap_err();
        assert!(matches!(err, StudyError::UnknownProgram(_)), "{err}");
    }

    /// With a tracer attached and a context active, a batch synthesizes
    /// session spans (cache.read for hits, measure/compile/simulate for
    /// misses, store.read for seeded hits) that share the request's trace id
    /// and ride the event spine; without a context, nothing is recorded.
    #[test]
    fn traced_batch_records_session_spans() {
        use crate::trace::{TraceContext, Tracer};
        let tracer = Tracer::new(8, Duration::from_secs(3600));
        let mut s = Session::serial().with_tracer(tracer.clone());
        let cfg = Config::baseline(CheckingMode::None);
        s.measure("frl", cfg).unwrap(); // no context: no spans

        let ctx = TraceContext::fresh();
        s.begin_trace(ctx);
        s.measure("frl", cfg).unwrap(); // hit → cache.read
        s.measure("trav", cfg).unwrap(); // miss → measure + compile + simulate
        s.end_trace();
        s.measure("boyer", cfg).unwrap(); // context cleared: no spans

        tracer.finish(ctx.trace, ctx.parent).expect("trace recorded");
        let rec = tracer.lookup(ctx.trace).unwrap();
        let names: Vec<&str> = rec.spans.iter().map(|sp| sp.name.as_str()).collect();
        assert_eq!(names, ["cache.read", "measure", "compile", "simulate"]);
        assert!(rec.spans.iter().all(|sp| sp.trace == ctx.trace));
        let measure = rec.spans.iter().find(|sp| sp.name == "measure").unwrap();
        assert_eq!(measure.parent, Some(ctx.parent));
        for leaf in ["compile", "simulate"] {
            let sp = rec.spans.iter().find(|sp| sp.name == leaf).unwrap();
            assert_eq!(sp.parent, Some(measure.id), "{leaf} nests under measure");
        }

        // The spans were mirrored onto the event spine, program-labeled.
        let m = s.metrics();
        let span_events: Vec<_> = m.events().iter().filter(|e| e.name == "span_end").collect();
        assert_eq!(span_events.len(), 4);
        assert!(span_events
            .iter()
            .all(|e| e.labels.iter().any(|(k, v)| k == "program" && !v.is_empty())));
    }

    /// A hit on a seeded entry spans as `store.read` — the provenance that
    /// lets a warm-restart trace prove "no simulation happened".
    #[test]
    fn seeded_hit_spans_as_store_read() {
        use crate::trace::{TraceContext, Tracer};
        let cfg = Config::baseline(CheckingMode::None);
        let mut cold = Session::serial();
        let m = cold.measure("frl", cfg).unwrap();
        let t = Timing::default();

        let tracer = Tracer::new(8, Duration::from_secs(3600));
        let mut warm = Session::serial().with_tracer(tracer.clone());
        warm.seed(m, t);
        let ctx = TraceContext::fresh();
        warm.begin_trace(ctx);
        warm.measure("frl", cfg).unwrap();
        warm.end_trace();
        tracer.finish(ctx.trace, ctx.parent).expect("trace recorded");
        let rec = tracer.lookup(ctx.trace).unwrap();
        assert_eq!(rec.spans.len(), 1);
        assert_eq!(rec.spans[0].name, "store.read");
        assert!(!rec.spans.iter().any(|sp| sp.name == "simulate"));
    }

    #[test]
    fn summary_mentions_cache_and_split() {
        let mut s = Session::new();
        s.measure("frl", Config::baseline(CheckingMode::None))
            .unwrap();
        let text = s.summary();
        assert!(text.contains("1 measurements cached"), "{text}");
        assert!(text.contains("compile"), "{text}");
        assert!(text.contains("slowest: frl"), "{text}");
    }
}
