//! The structured metrics and event layer: counters, gauges, duration
//! histograms and a machine-readable event log, exportable as JSON and as
//! Prometheus text-exposition format.
//!
//! [`crate::Session`] owns a [`MetricsRegistry`] and routes every lifecycle
//! event through it (the [`crate::Progress`] callback is a thin adapter fed
//! from the same spine). The registry is deliberately self-contained — plain
//! maps, no external dependencies — with a hand-rolled JSON emitter *and*
//! parser ([`Json`]) so round-tripping can be asserted in tests and CI can
//! validate the schema without any tooling beyond `cargo test`.
//!
//! Numeric fidelity: counters are `u64` and are emitted as bare integers;
//! floating-point values are emitted with Rust's shortest-round-trip
//! formatting, so `from_json(to_json(r)) == r` holds exactly (asserted by the
//! round-trip tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram bucket upper bounds for wall-time observations, in seconds.
pub const DURATION_BUCKETS: &[f64] = &[0.001, 0.004, 0.016, 0.064, 0.256, 1.0, 4.0, 16.0];
/// Histogram bucket upper bounds for worker-pool occupancy observations.
pub const OCCUPANCY_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Histogram bucket upper bounds for daemon request latency, in seconds.
/// Finer at the low end than [`DURATION_BUCKETS`]: a cache-hit request
/// answers in well under a millisecond, while a cold batch can simulate for
/// seconds — the geometric ×4 spacing covers 0.5ms…8s so both p50 of warm
/// traffic and p99 of cold traffic land inside finite buckets.
pub const REQUEST_BUCKETS: &[f64] = &[0.0005, 0.002, 0.008, 0.032, 0.128, 0.512, 2.048, 8.192];

/// Metric names the [`crate::Session`] publishes.
pub mod names {
    /// Counter: requests answered (cache hits + measurements started).
    pub const REQUESTS: &str = "session_requests_total";
    /// Counter: requests served from the cache (incl. in-batch duplicates).
    pub const CACHE_HITS: &str = "session_cache_hits_total";
    /// Counter: measurements started on a worker (incl. ones that later fail).
    pub const CACHE_MISSES: &str = "session_cache_misses_total";
    /// Counter: measurements that failed (error or worker panic).
    pub const FAILURES: &str = "session_failures_total";
    /// Histogram: compile wall time per measurement, seconds.
    pub const COMPILE_SECONDS: &str = "session_compile_seconds";
    /// Histogram: simulate wall time per measurement, seconds.
    pub const SIMULATE_SECONDS: &str = "session_simulate_seconds";
    /// Histogram: in-flight measurements observed at each measurement start.
    pub const POOL_OCCUPANCY: &str = "session_pool_occupancy";
    /// Gauge: configured worker-pool bound.
    pub const WORKERS_CONFIGURED: &str = "session_workers_configured";
    /// Gauge: highest observed in-flight measurement count.
    pub const POOL_PEAK_OCCUPANCY: &str = "session_pool_peak_occupancy";
    /// Gauge: distinct `(program, config)` points currently cached.
    pub const CACHED_MEASUREMENTS: &str = "session_cached_measurements";
    /// Counter: measurements preloaded into the cache from a persistent store
    /// (see [`crate::Session::seed`]) — answered later without simulating.
    pub const SEEDED: &str = "session_seeded_total";
    /// Counter: inline programs registered on the session (see
    /// [`crate::Session::register_source`]).
    pub const SOURCES_REGISTERED: &str = "session_sources_registered_total";
}

/// A fixed-bucket histogram (Prometheus-style, non-cumulative internally).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds, ascending. An implicit `+Inf` bucket follows.
    pub buckets: Vec<f64>,
    /// Observations per bucket (`counts[i]` ≤ `buckets[i]`, last = `+Inf`).
    /// Always `buckets.len() + 1` long.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            buckets: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let i = self
            .buckets
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.buckets.len());
        self.counts[i] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// within the bucket holding the target rank — the same estimate
    /// Prometheus's `histogram_quantile` computes server-side. `None` when
    /// the histogram is empty — judged by the per-bucket counts, not the
    /// `count` field, so a deserialized histogram whose `count` disagrees
    /// with its buckets (every bucket zero) yields `None` instead of a
    /// fabricated estimate. Observations that landed in the `+Inf`
    /// overflow bucket clamp to the largest finite bound, so the estimate is
    /// always finite (and always positive for positive observations).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let bucketed: u64 = self.counts.iter().sum();
        if bucketed == 0 || self.buckets.is_empty() {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * bucketed as f64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if (cum as f64) >= rank && *c > 0 {
                let Some(&upper) = self.buckets.get(i) else {
                    // Overflow bucket: clamp to the largest finite bound.
                    return self.buckets.last().copied();
                };
                let lower = if i == 0 { 0.0 } else { self.buckets[i - 1] };
                let below = (cum - c) as f64;
                let frac = ((rank - below) / *c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        self.buckets.last().copied()
    }
}

/// One entry of the machine-readable event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (0-based, append order).
    pub seq: u64,
    /// Event name (`cache_hit`, `measure_started`, `measure_finished`, …).
    pub name: String,
    /// Ordered label pairs (`program`, `config`, timings, …).
    pub labels: Vec<(String, String)>,
}

/// Counters, gauges, histograms and the event log. See the
/// [module docs](self).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<Event>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raise gauge `name` to `value` if `value` exceeds its current reading.
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(value);
        if value > *g {
            *g = value;
        }
    }

    /// Record `value` into histogram `name`, creating it over `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Append an event to the log.
    pub fn event(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.events.push(Event {
            seq: self.events.len() as u64,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Every histogram, in name order (labeled keys included as stored).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// The event log, in append order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    // --- JSON -------------------------------------------------------------

    /// Serialize the whole registry as a JSON object with keys `counters`,
    /// `gauges`, `histograms` and `events`. Deterministic (maps are sorted by
    /// name) and exactly invertible by [`MetricsRegistry::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"buckets\":[", json_str(k));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(*b));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"sum\":{},\"count\":{}}}", json_f64(h.sum), h.count);
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"name\":{},\"labels\":{{",
                e.seq,
                json_str(&e.name)
            );
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_str(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Rebuild a registry from [`MetricsRegistry::to_json`] output.
    ///
    /// # Errors
    ///
    /// A description of the first syntactic or schema violation.
    pub fn from_json(text: &str) -> Result<MetricsRegistry, String> {
        let root = Json::parse(text)?;
        let obj = root.as_object("top level")?;
        let mut r = MetricsRegistry::new();
        for (k, v) in get(obj, "counters")?.as_object("counters")? {
            r.counters.insert(k.clone(), v.as_u64(k)?);
        }
        for (k, v) in get(obj, "gauges")?.as_object("gauges")? {
            r.gauges.insert(k.clone(), v.as_f64(k)?);
        }
        for (k, v) in get(obj, "histograms")?.as_object("histograms")? {
            let h = v.as_object(k)?;
            let buckets = get(h, "buckets")?
                .as_array("buckets")?
                .iter()
                .map(|b| b.as_f64("bucket bound"))
                .collect::<Result<Vec<f64>, String>>()?;
            let counts = get(h, "counts")?
                .as_array("counts")?
                .iter()
                .map(|c| c.as_u64("bucket count"))
                .collect::<Result<Vec<u64>, String>>()?;
            if counts.len() != buckets.len() + 1 {
                return Err(format!(
                    "histogram {k}: {} counts for {} buckets (want buckets+1)",
                    counts.len(),
                    buckets.len()
                ));
            }
            r.histograms.insert(
                k.clone(),
                Histogram {
                    buckets,
                    counts,
                    sum: get(h, "sum")?.as_f64("sum")?,
                    count: get(h, "count")?.as_u64("count")?,
                },
            );
        }
        for (i, e) in get(obj, "events")?.as_array("events")?.iter().enumerate() {
            let eo = e.as_object("event")?;
            let seq = get(eo, "seq")?.as_u64("seq")?;
            if seq != i as u64 {
                return Err(format!("event {i}: out-of-order seq {seq}"));
            }
            r.events.push(Event {
                seq,
                name: get(eo, "name")?.as_str("name")?.to_string(),
                labels: get(eo, "labels")?
                    .as_object("labels")?
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), v.as_str(k)?.to_string())))
                    .collect::<Result<Vec<(String, String)>, String>>()?,
            });
        }
        Ok(r)
    }

    // --- Prometheus -------------------------------------------------------

    /// Render counters, gauges and histograms in the Prometheus
    /// text-exposition format (the event log is JSON-only).
    ///
    /// Metric names may carry a label set inline — a key like
    /// `daemon_request_duration_seconds{endpoint="POST /v1/experiments"}`
    /// renders as one labeled series of the `daemon_request_duration_seconds`
    /// family: the `# TYPE` header is emitted once per family, and histogram
    /// `le` labels merge into the series' own label set. Unlabeled keys
    /// render exactly as before.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed = std::collections::BTreeSet::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if typed.insert(base.to_string()) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
        };
        for (k, v) in &self.counters {
            let (base, _) = split_labels(k);
            type_line(&mut out, base, "counter");
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            let (base, _) = split_labels(k);
            type_line(&mut out, base, "gauge");
            let _ = writeln!(out, "{k} {}", json_f64(*v));
        }
        for (k, h) in &self.histograms {
            let (base, labels) = split_labels(k);
            type_line(&mut out, base, "histogram");
            // `le` joins the series' own labels: `{a="b",le="0.5"}`.
            let with_le = |le: &str| match labels {
                Some(l) => format!("{{{l},le=\"{le}\"}}"),
                None => format!("{{le=\"{le}\"}}"),
            };
            let mut cum = 0u64;
            for (b, c) in h.buckets.iter().zip(&h.counts) {
                cum += c;
                let _ = writeln!(out, "{base}_bucket{} {cum}", with_le(&json_f64(*b)));
            }
            let _ = writeln!(out, "{base}_bucket{} {}", with_le("+Inf"), h.count);
            let suffix = labels.map_or_else(String::new, |l| format!("{{{l}}}"));
            let _ = writeln!(out, "{base}_sum{suffix} {}", json_f64(h.sum));
            let _ = writeln!(out, "{base}_count{suffix} {}", h.count);
        }
        out
    }
}

/// Split a metric key into its family name and inline label set:
/// `name{a="b"}` → `("name", Some("a=\"b\""))`, `name` → `("name", None)`.
fn split_labels(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(open) if key.ends_with('}') => (&key[..open], Some(&key[open + 1..key.len() - 1])),
        _ => (key, None),
    }
}

/// Build a labeled metric key for [`MetricsRegistry`] maps:
/// `labeled("m", &[("a", "b")])` → `m{a="b"}`. Label values are escaped per
/// the Prometheus text format (backslash, quote, newline).
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Shortest-round-trip float formatting that is also valid JSON (Rust's `{:?}`
/// already prints a decimal point or exponent for every finite value).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "metrics never record NaN/Inf");
    format!("{v:?}")
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

/// A minimal JSON value, parsed without external dependencies.
///
/// Numbers are kept as their source text ([`Json::Num`]) so `u64` counters
/// survive untouched instead of being squeezed through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object, with key order preserved.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// A number, as written.
    Num(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// A description of the first syntax error, with byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The object entries, or an error mentioning `what`.
    ///
    /// # Errors
    ///
    /// When the value is not an object.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    /// The array elements, or an error mentioning `what`.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    /// The string contents, or an error mentioning `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    /// The number as `u64`, or an error mentioning `what`.
    ///
    /// # Errors
    ///
    /// When the value is not an unsigned integer.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => n
                .parse::<u64>()
                .map_err(|e| format!("{what}: {n:?} is not a u64 ({e})")),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    /// The number as `f64`, or an error mentioning `what`.
    ///
    /// # Errors
    ///
    /// When the value is not a number.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => n
                .parse::<f64>()
                .map_err(|e| format!("{what}: {n:?} is not an f64 ({e})")),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is a &str, so
                    // continuation bytes are well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.is_empty() || text == "-" {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(Json::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("a");
        r.add("a", 2);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("missing"), 0);
        r.set_gauge("g", 2.5);
        r.gauge_max("g", 1.0);
        assert_eq!(r.gauge("g"), Some(2.5));
        r.gauge_max("g", 7.0);
        assert_eq!(r.gauge("g"), Some(7.0));
        r.observe("h", &[1.0, 10.0], 0.5);
        r.observe("h", &[1.0, 10.0], 5.0);
        r.observe("h", &[1.0, 10.0], 50.0);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 55.5);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = MetricsRegistry::new();
        r.add("requests", u64::MAX - 1); // would not survive an f64 detour
        r.set_gauge("workers", 8.0);
        r.set_gauge("tiny", 0.1 + 0.2); // classic non-representable sum
        r.observe("lat", DURATION_BUCKETS, 0.003);
        r.observe("lat", DURATION_BUCKETS, 2.0);
        r.event("started", &[("program", "frl"), ("config", "high5/Full")]);
        r.event("weird \"labels\"", &[("k\n", "v\\")]);
        let json = r.to_json();
        let back = MetricsRegistry::from_json(&json).expect("parses");
        assert_eq!(back, r);
        // And the re-serialization is byte-identical (canonical form).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn prometheus_text_shape() {
        let mut r = MetricsRegistry::new();
        r.inc(names::CACHE_HITS);
        r.set_gauge(names::WORKERS_CONFIGURED, 4.0);
        r.observe(names::COMPILE_SECONDS, DURATION_BUCKETS, 0.01);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE session_cache_hits_total counter"));
        assert!(text.contains("session_cache_hits_total 1"));
        assert!(text.contains("# TYPE session_workers_configured gauge"));
        assert!(text.contains("session_compile_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("session_compile_seconds_count 1"));
        // Buckets are cumulative: the 0.016 bucket includes the 0.01 obs.
        assert!(text.contains("session_compile_seconds_bucket{le=\"0.016\"} 1"));
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // Four observations in (1, 2]: rank interpolates across that bucket.
        for v in [1.2, 1.4, 1.6, 1.8] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), Some(1.5));
        assert_eq!(h.quantile(1.0), Some(2.0));
        // An overflow observation clamps to the largest finite bound.
        h.observe(100.0);
        assert_eq!(h.quantile(0.99), Some(4.0));
        // Positive observations always yield a positive estimate.
        let mut tiny = Histogram::new(REQUEST_BUCKETS);
        tiny.observe(0.0001);
        assert!(tiny.quantile(0.5).unwrap() > 0.0);
        assert!(tiny.quantile(0.99).unwrap() > 0.0);
    }

    #[test]
    fn labeled_keys_render_as_series_of_one_family() {
        let mut r = MetricsRegistry::new();
        let a = labeled("req_seconds", &[("endpoint", "POST /v1/experiments")]);
        let b = labeled("req_seconds", &[("endpoint", "GET /metrics")]);
        r.observe(&a, &[0.5, 2.0], 0.1);
        r.observe(&b, &[0.5, 2.0], 1.0);
        r.add(&labeled("hits_total", &[("endpoint", "GET /metrics")]), 3);
        let text = r.to_prometheus();
        // One TYPE header per family, even with two labeled series.
        assert_eq!(text.matches("# TYPE req_seconds histogram").count(), 1);
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total{endpoint=\"GET /metrics\"} 3"));
        // `le` merges into the series' own label set.
        assert!(
            text.contains("req_seconds_bucket{endpoint=\"GET /metrics\",le=\"0.5\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("req_seconds_bucket{endpoint=\"POST /v1/experiments\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("req_seconds_count{endpoint=\"GET /metrics\"} 1"));
        assert!(text.contains("req_seconds_sum{endpoint=\"POST /v1/experiments\"} 0.1"));
    }

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(labeled("m", &[("k", "a\"b\\c\nd")]), "m{k=\"a\\\"b\\\\c\\nd\"}");
        assert_eq!(split_labels("m{k=\"v\"}"), ("m", Some("k=\"v\"")));
        assert_eq!(split_labels("plain"), ("plain", None));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("-").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a":[1,-2.5,1e3,true,false,null],"b":"x\u0041\n"}"#).unwrap();
        let obj = v.as_object("top").unwrap();
        let arr = get(obj, "a").unwrap().as_array("a").unwrap();
        assert_eq!(arr[0].as_u64("n").unwrap(), 1);
        assert_eq!(arr[1].as_f64("n").unwrap(), -2.5);
        assert_eq!(arr[2].as_f64("n").unwrap(), 1000.0);
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[5], Json::Null);
        assert_eq!(get(obj, "b").unwrap().as_str("b").unwrap(), "xA\n");
    }

    #[test]
    fn from_json_validates_schema() {
        // counts must be buckets+1 long.
        let bad = r#"{"counters":{},"gauges":{},"histograms":{"h":{"buckets":[1.0],"counts":[1],"sum":0.5,"count":1}},"events":[]}"#;
        let err = MetricsRegistry::from_json(bad).unwrap_err();
        assert!(err.contains("want buckets+1"), "{err}");
        // events must carry contiguous seq numbers.
        let bad = r#"{"counters":{},"gauges":{},"histograms":{},"events":[{"seq":3,"name":"x","labels":{}}]}"#;
        let err = MetricsRegistry::from_json(bad).unwrap_err();
        assert!(err.contains("out-of-order"), "{err}");
        // missing a top-level section.
        let err = MetricsRegistry::from_json(r#"{"counters":{}}"#).unwrap_err();
        assert!(err.contains("missing key"), "{err}");
    }
}
