//! Output-validated, measured benchmark executions.
//!
//! [`run_benchmark`]/[`run_program`] are the single-shot primitives: one
//! compile + one simulation, output checked against the benchmark's pinned
//! expectation. Studies should not call them in a loop — that is what
//! [`Session`](crate::Session) is for, which memoizes them per
//! `(program, Config)` and runs batches on a bounded worker pool.

use std::fmt;
use std::time::{Duration, Instant};

use lisp::CompileStats;
use mipsx::Stats;
use programs::Benchmark;

use crate::config::Config;

/// A caller-supplied program: Lisp source text plus an optional heap override
/// and an optional pinned output.
///
/// This is the dynamic counterpart of [`programs::Benchmark`] (whose fields
/// are `&'static str` because the ten paper benchmarks are compiled in).
/// Registered on a [`Session`](crate::Session) under a name via
/// [`Session::register_source`](crate::Session::register_source), an inline
/// program is measured, cached, deduplicated, and reported exactly like a
/// built-in benchmark; generated workloads (the `synth` crate) and the daemon's
/// inline experiment specs both ride this path.
///
/// When `expected_output` is `None` the measurement validates only that the
/// program halts cleanly (exit code [`lisp::exit_code::OK`]) — the right
/// default for generated programs whose output is pinned elsewhere (by the
/// reference evaluator). When it is `Some`, the output is asserted exactly as
/// for a built-in benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineProgram {
    /// The Lisp source text.
    pub source: String,
    /// Per-semispace heap bytes; `None` uses the configuration's default.
    pub heap_semi_bytes: Option<u32>,
    /// Exact expected output, or `None` to validate the exit code only.
    pub expected_output: Option<String>,
}

impl InlineProgram {
    /// An inline program with the default heap and no pinned output.
    pub fn new(source: impl Into<String>) -> InlineProgram {
        InlineProgram {
            source: source.into(),
            heap_semi_bytes: None,
            expected_output: None,
        }
    }

    /// Override the per-semispace heap size.
    #[must_use]
    pub fn with_heap(mut self, semi_bytes: u32) -> InlineProgram {
        self.heap_semi_bytes = Some(semi_bytes);
        self
    }

    /// Pin the exact expected output.
    #[must_use]
    pub fn with_expected_output(mut self, output: impl Into<String>) -> InlineProgram {
        self.expected_output = Some(output.into());
        self
    }

    /// Compile under `opts`, the heap override (when set) taking precedence —
    /// the same contract as [`programs::Benchmark::compile`].
    ///
    /// # Errors
    ///
    /// Propagates [`lisp::CompileError`].
    pub fn compile(
        &self,
        opts: &lisp::Options,
    ) -> Result<lisp::CompiledProgram, lisp::CompileError> {
        let opts = lisp::Options {
            heap_semi_bytes: self.heap_semi_bytes.unwrap_or(opts.heap_semi_bytes),
            ..*opts
        };
        lisp::compile(&self.source, &opts)
    }
}

/// A failure while measuring (any of these indicates a toolchain bug, since the
/// benchmarks are fixed inputs).
#[derive(Debug, Clone)]
pub enum StudyError {
    /// No benchmark with that name.
    UnknownProgram(String),
    /// Compilation failed.
    Compile {
        /// Benchmark name.
        program: String,
        /// The compiler's message.
        message: String,
    },
    /// Simulation failed.
    Sim {
        /// Benchmark name.
        program: String,
        /// The simulator's message.
        message: String,
    },
    /// The program ran but produced the wrong answer under this configuration.
    WrongOutput {
        /// Benchmark name.
        program: String,
        /// Configuration that produced it.
        config: String,
        /// What it printed.
        got: String,
    },
    /// Several measurements of one batch failed; every failure is retained.
    Multiple(Vec<StudyError>),
}

impl StudyError {
    /// Collapse a non-empty error list: a single error stays itself, several
    /// become [`StudyError::Multiple`].
    pub(crate) fn from_many(mut errors: Vec<StudyError>) -> StudyError {
        debug_assert!(!errors.is_empty());
        if errors.len() == 1 {
            errors.pop().expect("non-empty")
        } else {
            StudyError::Multiple(errors)
        }
    }
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::UnknownProgram(p) => write!(f, "unknown program {p}"),
            StudyError::Compile { program, message } => {
                write!(f, "{program}: compile failed: {message}")
            }
            StudyError::Sim { program, message } => write!(f, "{program}: run failed: {message}"),
            StudyError::WrongOutput {
                program,
                config,
                got,
            } => {
                write!(f, "{program} under {config}: wrong output {got:?}")
            }
            StudyError::Multiple(errors) => {
                write!(f, "{} measurements failed:", errors.len())?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StudyError {}

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub program: String,
    /// Configuration measured.
    pub config: Config,
    /// Dynamic statistics.
    pub stats: Stats,
    /// Static statistics.
    pub compile: CompileStats,
    /// Exit code of the simulated run. Validation guarantees
    /// [`lisp::exit_code::OK`] on every path that produces a `Measurement`,
    /// but the field is carried explicitly so result consumers (the daemon's
    /// differential-fuzzing clients in particular) can diff it instead of
    /// trusting the producer.
    pub halt_code: i32,
    /// Everything the simulated run printed.
    pub output: String,
}

/// Host-side wall time of one measurement, split compile vs simulate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timing {
    /// Wall time spent in the compiler.
    pub compile: Duration,
    /// Wall time spent in the simulator (including output validation).
    pub simulate: Duration,
}

impl Timing {
    /// Total wall time of the measurement.
    pub fn total(&self) -> Duration {
        self.compile + self.simulate
    }
}

/// Run a compiled program on the config's backend, attaching a
/// [`mipsx::TimingModel`] when the config asks for one. The stall breakdown
/// lands in `outcome.stats.timing`; every architectural result (cycles,
/// output, halt code, the rest of `Stats`) is identical either way, which is
/// why the ideal path skips the observer entirely.
fn simulate(
    compiled: &lisp::CompiledProgram,
    config: &Config,
) -> Result<lisp::Outcome, lisp::SimError> {
    if config.timing.is_ideal() {
        lisp::run_with(compiled, config.backend, programs::FUEL)
    } else {
        let mut model = mipsx::TimingModel::new(config.timing);
        let mut outcome =
            lisp::run_observed_with(compiled, config.backend, programs::FUEL, &mut model)?;
        outcome.stats.timing = Some(model.finish());
        Ok(outcome)
    }
}

/// [`run_benchmark`], also reporting where the host's wall time went.
///
/// # Errors
///
/// [`StudyError`] on compile/run failure or output mismatch.
pub fn run_benchmark_timed(
    b: &Benchmark,
    config: &Config,
) -> Result<(Measurement, Timing), StudyError> {
    let compile_start = Instant::now();
    let compiled = b
        .compile(&config.to_options())
        .map_err(|e| StudyError::Compile {
            program: b.name.to_string(),
            message: e.to_string(),
        })?;
    let compile_time = compile_start.elapsed();
    let sim_start = Instant::now();
    let outcome = simulate(&compiled, config).map_err(|e| StudyError::Sim {
        program: b.name.to_string(),
        message: e.to_string(),
    })?;
    if outcome.halt_code != lisp::exit_code::OK || outcome.output != b.expected_output {
        return Err(StudyError::WrongOutput {
            program: b.name.to_string(),
            config: config.to_string(),
            got: format!("halt={} {:?}", outcome.halt_code, outcome.output),
        });
    }
    let timing = Timing {
        compile: compile_time,
        simulate: sim_start.elapsed(),
    };
    Ok((
        Measurement {
            program: b.name.to_string(),
            config: *config,
            stats: outcome.stats,
            compile: compiled.stats,
            halt_code: outcome.halt_code,
            output: outcome.output,
        },
        timing,
    ))
}

/// Compile and run benchmark `b` under `config`, validating its output.
///
/// # Errors
///
/// [`StudyError`] on compile/run failure or output mismatch.
pub fn run_benchmark(b: &Benchmark, config: &Config) -> Result<Measurement, StudyError> {
    run_benchmark_timed(b, config).map(|(m, _)| m)
}

/// [`run_benchmark_timed`] for an [`InlineProgram`] registered as `name`.
///
/// Validation matches the program's contract: the exit code must be
/// [`lisp::exit_code::OK`], and the output must match `expected_output` when
/// one is pinned.
///
/// # Errors
///
/// [`StudyError`] on compile/run failure, a non-zero exit, or (when pinned)
/// an output mismatch.
pub fn run_inline_timed(
    name: &str,
    p: &InlineProgram,
    config: &Config,
) -> Result<(Measurement, Timing), StudyError> {
    let compile_start = Instant::now();
    let compiled = p
        .compile(&config.to_options())
        .map_err(|e| StudyError::Compile {
            program: name.to_string(),
            message: e.to_string(),
        })?;
    let compile_time = compile_start.elapsed();
    let sim_start = Instant::now();
    let outcome = simulate(&compiled, config).map_err(|e| StudyError::Sim {
        program: name.to_string(),
        message: e.to_string(),
    })?;
    let output_ok = p
        .expected_output
        .as_ref()
        .is_none_or(|want| outcome.output == *want);
    if outcome.halt_code != lisp::exit_code::OK || !output_ok {
        return Err(StudyError::WrongOutput {
            program: name.to_string(),
            config: config.to_string(),
            got: format!("halt={} {:?}", outcome.halt_code, outcome.output),
        });
    }
    let timing = Timing {
        compile: compile_time,
        simulate: sim_start.elapsed(),
    };
    Ok((
        Measurement {
            program: name.to_string(),
            config: *config,
            stats: outcome.stats,
            compile: compiled.stats,
            halt_code: outcome.halt_code,
            output: outcome.output,
        },
        timing,
    ))
}

/// Run a named benchmark under `config`.
///
/// # Errors
///
/// [`StudyError::UnknownProgram`] plus everything [`run_benchmark`] can raise.
pub fn run_program(name: &str, config: &Config) -> Result<Measurement, StudyError> {
    let b = programs::by_name(name).ok_or_else(|| StudyError::UnknownProgram(name.into()))?;
    run_benchmark(b, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisp::CheckingMode;

    #[test]
    fn unknown_program_is_an_error() {
        let e = run_program("nope", &Config::baseline(CheckingMode::None));
        assert!(matches!(e, Err(StudyError::UnknownProgram(_))));
    }

    #[test]
    fn run_program_validates_and_measures() {
        let m = run_program("frl", &Config::baseline(CheckingMode::None)).unwrap();
        assert!(m.stats.cycles > 100_000);
        assert!(m.compile.procedures > 20);
        assert_eq!(m.program, "frl");
    }

    #[test]
    fn timed_runs_attribute_wall_time() {
        let b = programs::by_name("frl").unwrap();
        let (_, t) = run_benchmark_timed(b, &Config::baseline(CheckingMode::None)).unwrap();
        assert!(t.compile > Duration::ZERO);
        assert!(t.simulate > Duration::ZERO);
        assert_eq!(t.total(), t.compile + t.simulate);
    }

    #[test]
    fn multiple_collapses_singletons() {
        let e = StudyError::from_many(vec![StudyError::UnknownProgram("x".into())]);
        assert!(matches!(e, StudyError::UnknownProgram(_)));
        let e = StudyError::from_many(vec![
            StudyError::UnknownProgram("x".into()),
            StudyError::UnknownProgram("y".into()),
        ]);
        let text = e.to_string();
        assert!(text.contains("2 measurements failed"));
        assert!(text.contains('x') && text.contains('y'));
    }
}
