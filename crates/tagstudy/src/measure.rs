//! Output-validated, measured benchmark executions.

use std::fmt;

use lisp::CompileStats;
use mipsx::Stats;
use programs::Benchmark;

use crate::config::Config;

/// A failure while measuring (any of these indicates a toolchain bug, since the
/// benchmarks are fixed inputs).
#[derive(Debug, Clone)]
pub enum StudyError {
    /// No benchmark with that name.
    UnknownProgram(String),
    /// Compilation failed.
    Compile {
        /// Benchmark name.
        program: String,
        /// The compiler's message.
        message: String,
    },
    /// Simulation failed.
    Sim {
        /// Benchmark name.
        program: String,
        /// The simulator's message.
        message: String,
    },
    /// The program ran but produced the wrong answer under this configuration.
    WrongOutput {
        /// Benchmark name.
        program: String,
        /// Configuration that produced it.
        config: String,
        /// What it printed.
        got: String,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::UnknownProgram(p) => write!(f, "unknown program {p}"),
            StudyError::Compile { program, message } => {
                write!(f, "{program}: compile failed: {message}")
            }
            StudyError::Sim { program, message } => write!(f, "{program}: run failed: {message}"),
            StudyError::WrongOutput {
                program,
                config,
                got,
            } => {
                write!(f, "{program} under {config}: wrong output {got:?}")
            }
        }
    }
}

impl std::error::Error for StudyError {}

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub program: String,
    /// Configuration measured.
    pub config: Config,
    /// Dynamic statistics.
    pub stats: Stats,
    /// Static statistics.
    pub compile: CompileStats,
}

/// Compile and run benchmark `b` under `config`, validating its output.
///
/// # Errors
///
/// [`StudyError`] on compile/run failure or output mismatch.
pub fn run_benchmark(b: &Benchmark, config: &Config) -> Result<Measurement, StudyError> {
    let compiled = b
        .compile(&config.to_options())
        .map_err(|e| StudyError::Compile {
            program: b.name.to_string(),
            message: e.to_string(),
        })?;
    let outcome = lisp::run(&compiled, programs::FUEL).map_err(|e| StudyError::Sim {
        program: b.name.to_string(),
        message: e.to_string(),
    })?;
    if outcome.halt_code != lisp::exit_code::OK || outcome.output != b.expected_output {
        return Err(StudyError::WrongOutput {
            program: b.name.to_string(),
            config: config.to_string(),
            got: format!("halt={} {:?}", outcome.halt_code, outcome.output),
        });
    }
    Ok(Measurement {
        program: b.name.to_string(),
        config: *config,
        stats: outcome.stats,
        compile: compiled.stats,
    })
}

/// Run a named benchmark under `config`.
///
/// # Errors
///
/// [`StudyError::UnknownProgram`] plus everything [`run_benchmark`] can raise.
pub fn run_program(name: &str, config: &Config) -> Result<Measurement, StudyError> {
    let b = programs::by_name(name).ok_or_else(|| StudyError::UnknownProgram(name.into()))?;
    run_benchmark(b, config)
}

/// Run every benchmark under `config`, in table order, in parallel.
///
/// # Errors
///
/// The first [`StudyError`] encountered.
pub fn run_all(config: &Config) -> Result<Vec<Measurement>, StudyError> {
    let benches = programs::all();
    let mut results: Vec<Option<Result<Measurement, StudyError>>> =
        benches.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for b in benches {
            let cfg = *config;
            handles.push(scope.spawn(move || run_benchmark(b, &cfg)));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("measurement thread panicked"));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisp::CheckingMode;

    #[test]
    fn unknown_program_is_an_error() {
        let e = run_program("nope", &Config::baseline(CheckingMode::None));
        assert!(matches!(e, Err(StudyError::UnknownProgram(_))));
    }

    #[test]
    fn run_program_validates_and_measures() {
        let m = run_program("frl", &Config::baseline(CheckingMode::None)).unwrap();
        assert!(m.stats.cycles > 100_000);
        assert!(m.compile.procedures > 20);
        assert_eq!(m.program, "frl");
    }
}
