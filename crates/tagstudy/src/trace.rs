//! End-to-end request tracing: trace/span identifiers, a `traceparent`-style
//! propagation header, and a bounded in-memory flight recorder.
//!
//! One experiment request produces one *trace* — a tree of timed *spans*
//! rooted at the daemon's request span, with children for queue wait, session
//! batch execution, per-measurement compile/simulate (reusing the wall-time
//! split [`crate::Timing`] already records), and store read/write I/O. The
//! client (`tagctl`) mints the [`TraceId`] and carries it to the daemon in a
//! `traceparent` header; every layer below attaches its spans to the same id,
//! so the whole request is reconstructable from a single lookup.
//!
//! The [`Tracer`] is the flight recorder: a ring buffer of the last N
//! completed traces plus a separate slow-request log (root span duration over
//! a configurable threshold). Everything is bounded — a daemon under
//! production traffic records forever in constant memory. Like every observer
//! in this codebase (the retirement trace of PR 2, the profiler of PR 3), the
//! recorder is provably zero-cost on *measurements*: spans time wall-clock
//! I/O and scheduling around the simulator, never the simulation itself, and
//! the zero-overhead proof test asserts byte-identical reports and `Stats`
//! with the recorder attached vs detached.
//!
//! Export formats: a hand-rolled JSON document (parsed back by `tagctl
//! trace` via [`RecorderSnapshot::from_json`]), the Chrome `chrome://tracing`
//! trace-event format ([`chrome_trace_json`]), and a plain-text span tree
//! ([`TraceRecord::render_tree`]).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Json;

/// The HTTP header that carries a [`TraceContext`] between processes
/// (`00-<32 hex trace>-<16 hex span>-01`, the W3C Trace Context shape).
pub const TRACEPARENT_HEADER: &str = "traceparent";

/// Active traces the recorder will hold spans for concurrently; spans for
/// further trace ids are dropped (and counted) rather than growing the map.
const MAX_ACTIVE_TRACES: usize = 64;
/// Spans one trace may accumulate before further spans are dropped.
const MAX_SPANS_PER_TRACE: usize = 4096;
/// Completed traces kept in the slow-request log.
const SLOW_LOG_CAPACITY: usize = 32;

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

/// A 128-bit trace identifier, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// A 64-bit span identifier, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A process-global sequence mixed into every generated id so two ids minted
/// in the same nanosecond still differ.
static ID_SEQ: AtomicU64 = AtomicU64::new(0);

/// splitmix64 — a tiny, well-distributed mixer (public-domain constants).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fresh pseudo-random 64-bit value: wall clock + pid + a global sequence,
/// stirred through splitmix64. Not cryptographic — ids only need to be
/// unique enough that concurrent requests never collide in practice.
fn fresh_u64() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = ID_SEQ.fetch_add(1, Ordering::Relaxed);
    splitmix64(nanos ^ seq.rotate_left(17) ^ u64::from(std::process::id()).rotate_left(47))
}

impl TraceId {
    /// Mint a fresh (non-zero) trace id.
    pub fn generate() -> TraceId {
        loop {
            let id = (u128::from(fresh_u64()) << 64) | u128::from(fresh_u64());
            if id != 0 {
                return TraceId(id);
            }
        }
    }

    /// Parse 32 lowercase hex digits. `None` on any other shape (including
    /// the all-zero id, which the W3C spec reserves as invalid).
    pub fn from_hex(text: &str) -> Option<TraceId> {
        if text.len() != 32 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        match u128::from_str_radix(text, 16) {
            Ok(0) | Err(_) => None,
            Ok(id) => Some(TraceId(id)),
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl SpanId {
    /// Mint a fresh (non-zero) span id.
    pub fn generate() -> SpanId {
        loop {
            let id = fresh_u64();
            if id != 0 {
                return SpanId(id);
            }
        }
    }

    /// Parse 16 lowercase hex digits; `None` on any other shape or all-zero.
    pub fn from_hex(text: &str) -> Option<SpanId> {
        if text.len() != 16 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        match u64::from_str_radix(text, 16) {
            Ok(0) | Err(_) => None,
            Ok(id) => Some(SpanId(id)),
        }
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Propagation
// ---------------------------------------------------------------------------

/// Where new spans should attach: a trace id and the parent span to hang
/// children under. `Copy`, so it threads freely through worker pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span joins.
    pub trace: TraceId,
    /// The span new children are parented under.
    pub parent: SpanId,
}

impl TraceContext {
    /// A context rooted at `parent` within `trace`.
    pub fn new(trace: TraceId, parent: SpanId) -> TraceContext {
        TraceContext { trace, parent }
    }

    /// A brand-new trace with a freshly minted client-side root span — what
    /// `tagctl` sends when originating a request.
    pub fn fresh() -> TraceContext {
        TraceContext {
            trace: TraceId::generate(),
            parent: SpanId::generate(),
        }
    }

    /// Render as a `traceparent` header value: `00-<trace>-<parent>-01`.
    pub fn to_traceparent(self) -> String {
        format!("00-{}-{}-01", self.trace, self.parent)
    }

    /// Parse a `traceparent` header value. Deliberately lenient in effect:
    /// callers treat `None` as "start a fresh trace" — a malformed header
    /// must never fail a request (asserted by the daemon's e2e tests).
    pub fn from_traceparent(text: &str) -> Option<TraceContext> {
        let mut parts = text.trim().split('-');
        let version = parts.next()?;
        if version.len() != 2 || !version.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let trace = TraceId::from_hex(parts.next()?)?;
        let parent = SpanId::from_hex(parts.next()?)?;
        // Flags must be present and hex; anything after is tolerated per spec
        // only for future versions — we reject it, falling back to fresh ids.
        let flags = parts.next()?;
        if flags.len() != 2 || !flags.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(TraceContext { trace, parent })
    }
}

// ---------------------------------------------------------------------------
// Spans and trace records
// ---------------------------------------------------------------------------

/// One completed span: a named, labeled interval within a trace. Times are
/// microseconds since the owning [`Tracer`]'s epoch (the daemon's start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// The parent span, if any. A parent outside the recorded set (e.g. the
    /// client's originating span) renders this span as a root.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `POST /v1/experiments`, `simulate`, `store.write`.
    pub name: String,
    /// The layer that produced it: `daemon`, `session`, `store`, `fleet`,
    /// `client`.
    pub component: String,
    /// Start, µs since the tracer epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Ordered key/value labels (program, config, status, key, …).
    pub labels: Vec<(String, String)>,
}

/// One completed trace: the sealed set of spans for a finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace id.
    pub trace: TraceId,
    /// Name of the root span (the daemon request span).
    pub root: String,
    /// Root span start, µs since the tracer epoch.
    pub start_us: u64,
    /// Root span duration, µs.
    pub dur_us: u64,
    /// Every recorded span, in record order.
    pub spans: Vec<SpanRecord>,
}

/// Recorder counters, reported on `/v1/debug/trace` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Traces completed (sealed by [`Tracer::finish`]) since start.
    pub completed: u64,
    /// Completed traces evicted from the ring buffer.
    pub evicted: u64,
    /// Spans dropped by the active-trace or spans-per-trace bounds.
    pub dropped_spans: u64,
    /// Completed traces whose root exceeded the slow threshold.
    pub slow: u64,
}

/// A point-in-time copy of the flight recorder's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderSnapshot {
    /// The last N completed traces, oldest first.
    pub recent: Vec<TraceRecord>,
    /// The slow-request log, oldest first.
    pub slow: Vec<TraceRecord>,
    /// Recorder counters.
    pub stats: RecorderStats,
    /// The configured slow threshold, µs.
    pub slow_threshold_us: u64,
}

// ---------------------------------------------------------------------------
// The flight recorder
// ---------------------------------------------------------------------------

struct RecorderState {
    /// Spans of traces still in flight, keyed by trace id.
    active: HashMap<u128, Vec<SpanRecord>>,
    /// The ring of completed traces (bounded by `capacity`).
    recent: VecDeque<TraceRecord>,
    /// Completed traces over the slow threshold (bounded separately, so a
    /// burst of fast requests cannot evict the slow outliers under study).
    slow: VecDeque<TraceRecord>,
    stats: RecorderStats,
}

struct TracerInner {
    epoch: Instant,
    capacity: usize,
    slow_threshold: Duration,
    state: Mutex<RecorderState>,
}

/// The bounded in-memory flight recorder. Cheap to clone (an `Arc`), safe to
/// share across threads; all recording goes through one short-held mutex.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.snapshot().stats;
        f.debug_struct("Tracer")
            .field("capacity", &self.inner.capacity)
            .field("slow_threshold", &self.inner.slow_threshold)
            .field("completed", &stats.completed)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A recorder keeping the last `capacity` completed traces, flagging
    /// roots that take `slow_threshold` or longer into the slow log.
    pub fn new(capacity: usize, slow_threshold: Duration) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                slow_threshold,
                state: Mutex::new(RecorderState {
                    active: HashMap::new(),
                    recent: VecDeque::new(),
                    slow: VecDeque::new(),
                    stats: RecorderStats::default(),
                }),
            }),
        }
    }

    /// Microseconds elapsed since this tracer was created.
    pub fn now_us(&self) -> u64 {
        self.at_us(Instant::now())
    }

    /// `at` as microseconds since the tracer epoch (0 for instants before
    /// the epoch — e.g. a connection accepted while the tracer was built).
    pub fn at_us(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.inner.epoch)
            .map_or(0, |d| d.as_micros() as u64)
    }

    /// The configured slow-request threshold.
    pub fn slow_threshold(&self) -> Duration {
        self.inner.slow_threshold
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one completed span into its (still-active) trace. Bounded: a
    /// span for a brand-new trace is dropped when [`MAX_ACTIVE_TRACES`]
    /// traces are already in flight, and a trace stops accumulating at
    /// [`MAX_SPANS_PER_TRACE`] spans — both counted in
    /// [`RecorderStats::dropped_spans`].
    pub fn record(&self, span: SpanRecord) {
        let mut s = self.lock();
        if !s.active.contains_key(&span.trace.0) && s.active.len() >= MAX_ACTIVE_TRACES {
            s.stats.dropped_spans += 1;
            return;
        }
        let spans = s.active.entry(span.trace.0).or_default();
        if spans.len() >= MAX_SPANS_PER_TRACE {
            s.stats.dropped_spans += 1;
            return;
        }
        spans.push(span);
        drop(s);
    }

    /// Seal `trace`: move its spans out of the active set and into the
    /// completed ring (and the slow log when the root overstays the
    /// threshold). `root` names the request span the duration is read from;
    /// when it was never recorded (or everything was dropped), the trace
    /// envelope stands in. Returns the sealed record's root duration, or
    /// `None` if the trace recorded no spans at all.
    pub fn finish(&self, trace: TraceId, root: SpanId) -> Option<Duration> {
        let mut s = self.lock();
        let spans = s.active.remove(&trace.0)?;
        if spans.is_empty() {
            return None;
        }
        let record = seal(trace, root, spans);
        let dur = Duration::from_micros(record.dur_us);
        s.stats.completed += 1;
        if dur >= self.inner.slow_threshold {
            s.stats.slow += 1;
            s.slow.push_back(record.clone());
            while s.slow.len() > SLOW_LOG_CAPACITY {
                s.slow.pop_front();
            }
        }
        s.recent.push_back(record);
        while s.recent.len() > self.inner.capacity {
            s.recent.pop_front();
            s.stats.evicted += 1;
        }
        Some(dur)
    }

    /// The recorder's counters alone — cheap, no record cloning (what the
    /// daemon's `/metrics` scrape uses).
    pub fn stats(&self) -> RecorderStats {
        self.lock().stats
    }

    /// A copy of everything the recorder currently holds.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let s = self.lock();
        RecorderSnapshot {
            recent: s.recent.iter().cloned().collect(),
            slow: s.slow.iter().cloned().collect(),
            stats: s.stats,
            slow_threshold_us: self.inner.slow_threshold.as_micros() as u64,
        }
    }

    /// Find one completed trace by id (recent ring first, then the slow log).
    pub fn lookup(&self, trace: TraceId) -> Option<TraceRecord> {
        let s = self.lock();
        s.recent
            .iter()
            .rev()
            .chain(s.slow.iter().rev())
            .find(|t| t.trace == trace)
            .cloned()
    }
}

/// Build the sealed [`TraceRecord`] for a finished trace.
fn seal(trace: TraceId, root: SpanId, spans: Vec<SpanRecord>) -> TraceRecord {
    let (root_name, start_us, dur_us) = match spans.iter().find(|s| s.id == root) {
        Some(r) => (r.name.clone(), r.start_us, r.dur_us),
        None => {
            // Fall back to the span envelope: earliest start to latest end.
            let start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
            let end = spans
                .iter()
                .map(|s| s.start_us + s.dur_us)
                .max()
                .unwrap_or(start);
            let name = spans.first().map_or_else(String::new, |s| s.name.clone());
            (name, start, end - start)
        }
    };
    TraceRecord {
        trace,
        root: root_name,
        start_us,
        dur_us,
        spans,
    }
}

// ---------------------------------------------------------------------------
// JSON export / import
// ---------------------------------------------------------------------------

fn span_to_json(out: &mut String, s: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":{},\"name\":{},\"component\":{},\
         \"start_us\":{},\"dur_us\":{},\"labels\":{{",
        s.trace,
        s.id,
        s.parent
            .map_or_else(|| "null".to_string(), |p| format!("\"{p}\"")),
        crate::metrics::json_str(&s.name),
        crate::metrics::json_str(&s.component),
        s.start_us,
        s.dur_us,
    );
    for (i, (k, v)) in s.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{}",
            crate::metrics::json_str(k),
            crate::metrics::json_str(v)
        );
    }
    out.push_str("}}");
}

impl TraceRecord {
    /// Serialize as a JSON object (inverse of [`TraceRecord::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace\":\"{}\",\"root\":{},\"start_us\":{},\"dur_us\":{},\"spans\":[",
            self.trace,
            crate::metrics::json_str(&self.root),
            self.start_us,
            self.dur_us,
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_to_json(&mut out, s);
        }
        out.push_str("]}");
        out
    }

    /// Rebuild from a parsed [`Json`] object.
    ///
    /// # Errors
    ///
    /// The first schema violation, described.
    pub fn from_json(v: &Json) -> Result<TraceRecord, String> {
        let obj = v.as_object("trace record")?;
        let trace = TraceId::from_hex(json_get(obj, "trace")?.as_str("trace")?)
            .ok_or("bad trace id")?;
        let mut spans = Vec::new();
        for s in json_get(obj, "spans")?.as_array("spans")? {
            let so = s.as_object("span")?;
            let parent = match json_get(so, "parent")? {
                Json::Null => None,
                other => Some(
                    SpanId::from_hex(other.as_str("parent")?).ok_or("bad parent span id")?,
                ),
            };
            spans.push(SpanRecord {
                trace: TraceId::from_hex(json_get(so, "trace")?.as_str("trace")?)
                    .ok_or("bad span trace id")?,
                id: SpanId::from_hex(json_get(so, "span")?.as_str("span")?)
                    .ok_or("bad span id")?,
                parent,
                name: json_get(so, "name")?.as_str("name")?.to_string(),
                component: json_get(so, "component")?.as_str("component")?.to_string(),
                start_us: json_get(so, "start_us")?.as_u64("start_us")?,
                dur_us: json_get(so, "dur_us")?.as_u64("dur_us")?,
                labels: json_get(so, "labels")?
                    .as_object("labels")?
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), v.as_str(k)?.to_string())))
                    .collect::<Result<Vec<_>, String>>()?,
            });
        }
        Ok(TraceRecord {
            trace,
            root: json_get(obj, "root")?.as_str("root")?.to_string(),
            start_us: json_get(obj, "start_us")?.as_u64("start_us")?,
            dur_us: json_get(obj, "dur_us")?.as_u64("dur_us")?,
            spans,
        })
    }

    /// Render the span tree as indented plain text — what `tagctl trace`
    /// prints. Spans whose parent is outside the record (e.g. the client's
    /// originating span) are shown as roots.
    pub fn render_tree(&self) -> String {
        let mut out = format!(
            "trace {}  root {:?}  {}  {} span(s)\n",
            self.trace,
            self.root,
            fmt_us(self.dur_us),
            self.spans.len()
        );
        let ids: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id.0).collect();
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &self.spans {
            match s.parent {
                Some(p) if ids.contains(&p.0) && p != s.id => {
                    children.entry(p.0).or_default().push(s);
                }
                _ => roots.push(s),
            }
        }
        let by_start = |a: &&SpanRecord, b: &&SpanRecord| {
            a.start_us.cmp(&b.start_us).then(a.id.0.cmp(&b.id.0))
        };
        roots.sort_by(by_start);
        for v in children.values_mut() {
            v.sort_by(by_start);
        }
        fn walk(
            out: &mut String,
            span: &SpanRecord,
            children: &HashMap<u64, Vec<&SpanRecord>>,
            prefix: &str,
            last: bool,
        ) {
            let branch = if last { "└─ " } else { "├─ " };
            let labels = span
                .labels
                .iter()
                .map(|(k, v)| format!(" {k}={v}"))
                .collect::<String>();
            let _ = writeln!(
                out,
                "{prefix}{branch}{:<28} {:>10}  [{}]{labels}",
                span.name,
                fmt_us(span.dur_us),
                span.component
            );
            let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
            if let Some(kids) = children.get(&span.id.0) {
                for (i, kid) in kids.iter().enumerate() {
                    walk(out, kid, children, &next_prefix, i + 1 == kids.len());
                }
            }
        }
        for (i, root) in roots.iter().enumerate() {
            walk(&mut out, root, &children, "", i + 1 == roots.len());
        }
        out
    }
}

impl RecorderSnapshot {
    /// Serialize the whole snapshot (the `GET /v1/debug/trace` document).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"completed\":{},\"evicted\":{},\"dropped_spans\":{},\"slow_total\":{},\
             \"slow_threshold_us\":{},\"traces\":[",
            self.stats.completed,
            self.stats.evicted,
            self.stats.dropped_spans,
            self.stats.slow,
            self.slow_threshold_us,
        );
        for (i, t) in self.recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"slow\":[");
        for (i, t) in self.slow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Parse a [`RecorderSnapshot::to_json`] document.
    ///
    /// # Errors
    ///
    /// The first syntactic or schema violation, described.
    pub fn from_json(text: &str) -> Result<RecorderSnapshot, String> {
        let root = Json::parse(text)?;
        let obj = root.as_object("snapshot")?;
        let traces = |key: &str| -> Result<Vec<TraceRecord>, String> {
            json_get(obj, key)?
                .as_array(key)?
                .iter()
                .map(TraceRecord::from_json)
                .collect()
        };
        Ok(RecorderSnapshot {
            recent: traces("traces")?,
            slow: traces("slow")?,
            stats: RecorderStats {
                completed: json_get(obj, "completed")?.as_u64("completed")?,
                evicted: json_get(obj, "evicted")?.as_u64("evicted")?,
                dropped_spans: json_get(obj, "dropped_spans")?.as_u64("dropped_spans")?,
                slow: json_get(obj, "slow_total")?.as_u64("slow_total")?,
            },
            slow_threshold_us: json_get(obj, "slow_threshold_us")?.as_u64("slow_threshold_us")?,
        })
    }
}

fn json_get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

/// Render `traces` in the Chrome `chrome://tracing` / Perfetto trace-event
/// format: one complete (`"ph":"X"`) event per span, timestamps and
/// durations in µs, the component as the category and labels as `args`.
/// Every trace gets its own `pid` row so concurrent requests stack visually.
pub fn chrome_trace_json(traces: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (row, t) in traces.iter().enumerate() {
        for s in &t.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":1,\"args\":{{\"trace\":\"{}\",\"span\":\"{}\"",
                crate::metrics::json_str(&s.name),
                crate::metrics::json_str(&s.component),
                s.start_us,
                s.dur_us.max(1),
                row + 1,
                s.trace,
                s.id,
            );
            for (k, v) in &s.labels {
                let _ = write!(
                    out,
                    ",{}:{}",
                    crate::metrics::json_str(k),
                    crate::metrics::json_str(v)
                );
            }
            out.push_str("}}");
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Human-friendly µs formatting: `417µs`, `12.35ms`, `3.20s`.
pub fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: TraceId, id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace,
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.to_string(),
            component: "test".to_string(),
            start_us: start,
            dur_us: dur,
            labels: vec![("k".to_string(), "v".to_string())],
        }
    }

    #[test]
    fn ids_render_and_parse() {
        let t = TraceId::generate();
        let s = SpanId::generate();
        assert_eq!(TraceId::from_hex(&t.to_string()), Some(t));
        assert_eq!(SpanId::from_hex(&s.to_string()), Some(s));
        assert_ne!(TraceId::generate(), TraceId::generate());
        assert!(TraceId::from_hex("short").is_none());
        assert!(TraceId::from_hex(&"0".repeat(32)).is_none(), "all-zero is invalid");
        assert!(SpanId::from_hex(&"g".repeat(16)).is_none());
    }

    #[test]
    fn traceparent_round_trips_and_rejects_malformed() {
        let ctx = TraceContext::fresh();
        let header = ctx.to_traceparent();
        assert_eq!(TraceContext::from_traceparent(&header), Some(ctx));
        // Lenient fallback: every malformed shape is None, never a panic.
        for bad in [
            "",
            "xx",
            "00-abc-def-01",
            "00-00000000000000000000000000000000-0000000000000000-01",
            &header[..header.len() - 3],
            &format!("{header}-junk"),
            "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        ] {
            assert_eq!(TraceContext::from_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn recorder_seals_a_trace_with_root_timing() {
        let tracer = Tracer::new(8, Duration::from_secs(3600));
        let trace = TraceId::generate();
        let root = SpanId(42);
        tracer.record(span(trace, 7, Some(42), "child", 10, 5));
        tracer.record(span(trace, 42, None, "root", 0, 100));
        let dur = tracer.finish(trace, root).expect("sealed");
        assert_eq!(dur, Duration::from_micros(100));
        let got = tracer.lookup(trace).expect("in the ring");
        assert_eq!(got.root, "root");
        assert_eq!((got.start_us, got.dur_us), (0, 100));
        assert_eq!(got.spans.len(), 2);
        // Finishing again is a no-op: the trace is no longer active.
        assert_eq!(tracer.finish(trace, root), None);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts() {
        let tracer = Tracer::new(3, Duration::from_secs(3600));
        let mut ids = Vec::new();
        for i in 0..5u64 {
            let trace = TraceId(u128::from(i) + 1);
            ids.push(trace);
            tracer.record(span(trace, 1, None, &format!("req{i}"), 0, 10));
            tracer.finish(trace, SpanId(1));
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.stats.completed, 5);
        assert_eq!(snap.stats.evicted, 2);
        assert_eq!(snap.recent.len(), 3);
        // The oldest two are gone; the newest three remain in order.
        assert_eq!(tracer.lookup(ids[0]), None);
        assert_eq!(tracer.lookup(ids[1]), None);
        let names: Vec<&str> = snap.recent.iter().map(|t| t.root.as_str()).collect();
        assert_eq!(names, ["req2", "req3", "req4"]);
    }

    #[test]
    fn slow_log_keeps_only_over_threshold_roots() {
        let tracer = Tracer::new(2, Duration::from_millis(1));
        let fast = TraceId(1);
        tracer.record(span(fast, 1, None, "fast", 0, 500)); // 0.5ms
        tracer.finish(fast, SpanId(1));
        let slow = TraceId(2);
        tracer.record(span(slow, 1, None, "slow", 0, 2_000)); // 2ms
        tracer.finish(slow, SpanId(1));
        let snap = tracer.snapshot();
        assert_eq!(snap.stats.slow, 1);
        assert_eq!(snap.slow.len(), 1);
        assert_eq!(snap.slow[0].root, "slow");
        // Eviction from the recent ring does not touch the slow log.
        for i in 3..6u64 {
            let t = TraceId(u128::from(i));
            tracer.record(span(t, 1, None, "filler", 0, 10));
            tracer.finish(t, SpanId(1));
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.slow.len(), 1, "slow log survives ring churn");
        assert!(tracer.lookup(slow).is_some(), "slow trace still findable");
    }

    #[test]
    fn bounds_drop_spans_instead_of_growing() {
        let tracer = Tracer::new(4, Duration::from_secs(3600));
        // Fill the active-trace bound without finishing anything.
        for i in 0..MAX_ACTIVE_TRACES as u64 {
            tracer.record(span(TraceId(u128::from(i) + 1), 1, None, "open", 0, 1));
        }
        tracer.record(span(TraceId(9999), 1, None, "one-too-many", 0, 1));
        assert_eq!(tracer.snapshot().stats.dropped_spans, 1);
        assert_eq!(tracer.lookup(TraceId(9999)), None);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let tracer = Tracer::new(4, Duration::from_millis(1));
        let trace = TraceId::generate();
        tracer.record(span(trace, 2, Some(1), "store.read \"quoted\"", 5, 7));
        tracer.record(span(trace, 1, None, "GET /v1/results/{key}", 0, 2_500));
        tracer.finish(trace, SpanId(1));
        let snap = tracer.snapshot();
        let parsed = RecorderSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
        // And a single record round-trips through the Json value layer.
        let one = &snap.recent[0];
        let back = TraceRecord::from_json(&Json::parse(&one.to_json()).unwrap()).unwrap();
        assert_eq!(&back, one);
    }

    #[test]
    fn chrome_export_is_valid_json_with_complete_events() {
        let tracer = Tracer::new(4, Duration::from_secs(3600));
        let trace = TraceId::generate();
        tracer.record(span(trace, 1, None, "root", 0, 100));
        tracer.record(span(trace, 2, Some(1), "child", 10, 0)); // zero-width
        tracer.finish(trace, SpanId(1));
        let text = chrome_trace_json(&tracer.snapshot().recent);
        let root = Json::parse(&text).expect("chrome export parses");
        let events = json_get(root.as_object("doc").unwrap(), "traceEvents")
            .unwrap()
            .as_array("traceEvents")
            .unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            let obj = e.as_object("event").unwrap();
            assert_eq!(json_get(obj, "ph").unwrap().as_str("ph").unwrap(), "X");
            assert!(json_get(obj, "dur").unwrap().as_u64("dur").unwrap() >= 1);
        }
    }

    #[test]
    fn render_tree_nests_children_under_parents() {
        let trace = TraceId::generate();
        let record = TraceRecord {
            trace,
            root: "POST /v1/experiments".to_string(),
            start_us: 0,
            dur_us: 1000,
            spans: vec![
                span(trace, 1, Some(99), "POST /v1/experiments", 0, 1000),
                span(trace, 2, Some(1), "queue_wait", 0, 50),
                span(trace, 3, Some(1), "session.batch", 60, 900),
                span(trace, 4, Some(3), "simulate", 100, 700),
            ],
        };
        let tree = record.render_tree();
        // The root (parent 99 is outside the record) renders unindented; the
        // batch nests under it; simulate nests one level deeper.
        assert!(tree.contains("└─ POST /v1/experiments"), "{tree}");
        assert!(tree.contains("   └─ session.batch"), "{tree}");
        assert!(tree.contains("      └─ simulate"), "{tree}");
        assert!(tree.contains("├─ queue_wait"), "{tree}");
    }

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(417), "417µs");
        assert_eq!(fmt_us(12_350), "12.35ms");
        assert_eq!(fmt_us(3_200_000), "3.20s");
    }
}
