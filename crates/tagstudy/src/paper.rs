//! The paper's published numbers, for side-by-side comparison in reports.
//!
//! Absolute agreement is not expected — the substrate is a re-implemented
//! simulator and re-implemented workloads — but the *shape* (orderings, rough
//! magnitudes, crossovers) should hold; EXPERIMENTS.md records both.

/// Table 1: per-program % increase in execution time when full run-time
/// checking is added: `(name, arith, vector, list, total)`.
pub const TABLE1: [(&str, f64, f64, f64, f64); 10] = [
    ("inter", 0.63, 0.00, 19.04, 19.68),
    ("deduce", 0.09, 0.00, 12.27, 12.36),
    ("dedgc", 0.04, 0.00, 6.58, 6.62),
    ("rat", 4.85, 0.00, 13.69, 18.54),
    ("comp", 0.05, 0.00, 10.34, 10.39),
    ("opt", 2.68, 11.76, 27.99, 42.43),
    ("frl", 0.45, 0.00, 9.72, 10.17),
    ("boyer", 0.00, 0.00, 17.50, 17.50),
    ("brow", 0.03, 0.00, 19.91, 19.94),
    ("trav", 3.09, 71.96, 13.19, 88.25),
];

/// Table 1 averages: (arith, vector, list, total).
pub const TABLE1_AVG: (f64, f64, f64, f64) = (1.19, 8.37, 15.02, 24.59);

/// Figure 1 (read off the histogram): % of time per tag operation,
/// `(op, without checking, with full checking)`.
pub const FIGURE1: [(&str, f64, f64); 4] = [
    ("insertion", 1.5, 1.2),
    ("removal", 8.7, 7.0),
    ("extraction", 4.0, 10.0),
    ("checking", 11.0, 24.0),
];

/// Figure 1 summary: total tag-handling cost is between 22% and 32% (§3.5).
pub const FIGURE1_TOTAL_RANGE: (f64, f64) = (22.0, 32.0);

/// Figure 2: reduction in instruction frequencies when tag masking is
/// eliminated, in % of execution time: `(class, reduction)` — negative values
/// are increases (the paper's move/no-op/squash bars).
pub const FIGURE2: [(&str, f64); 3] = [("and", 8.0), ("move", -1.0), ("noop+squash", -1.3)];

/// Figure 2: net speedup from not masking tags (§5.1).
pub const FIGURE2_TOTAL: f64 = 5.7;

/// Table 2: % of cycles eliminated, `(row label, no-checking, full-checking)`.
pub const TABLE2: [(&str, f64, f64); 7] = [
    ("1 avoid tag masking (software)", 5.7, 4.6),
    ("2 avoid tag extraction", 3.6, 9.3),
    ("3 avoid masking and extraction", 9.3, 13.9),
    ("4 support generic arithmetic", 0.0, 0.7),
    ("5 avoid tag checking on list ops", 0.0, 16.3),
    ("6 avoid all error tag checking", 0.0, 18.2),
    ("7 maximal MIPS-X support", 9.3, 22.1),
];

/// Table 2 rows 5/6 subrows: `(row, check-none, check-full, mask-none, mask-full)`.
pub const TABLE2_SUBROWS: [(&str, f64, f64, f64, f64); 2] = [
    ("5 lists", 0.0, 12.1, 0.0, 4.2),
    ("6 lists+vectors", 0.0, 13.6, 0.0, 4.6),
];

/// §7: the SPUR-like configuration eliminates 9–21% of cycles; 4–16% if the
/// row-1 software scheme is already in use.
pub const SPUR_RANGE: (f64, f64) = (9.0, 21.0);
/// See [`SPUR_RANGE`].
pub const SPUR_OVER_SOFTWARE_RANGE: (f64, f64) = (4.0, 16.0);

/// Table 3: `(program, procedures, source lines, object words)`.
pub const TABLE3: [(&str, u32, u32, u32); 10] = [
    ("inter", 64, 710, 1533),
    ("deduce", 100, 900, 3419),
    ("dedgc", 116, 1100, 4112),
    ("rat", 148, 1900, 6315),
    ("comp", 220, 2400, 9466),
    ("opt", 226, 3500, 11121),
    ("frl", 198, 2500, 11802),
    ("boyer", 84, 1200, 1793),
    ("brow", 91, 1000, 2296),
    ("trav", 78, 810, 1673),
];

/// §3.1: tag insertion costs ~1.5% of time; a preshifted list tag saves ~0.5%.
pub const INSERTION_PCT: f64 = 1.5;
/// See [`INSERTION_PCT`].
pub const PRESHIFT_GAIN_PCT: f64 = 0.5;

/// §4.2: generic arithmetic costs 2% on average (8% for rat) with the plain
/// encoding, 1.6% with the arithmetic-safe encoding (rat improves ~2%).
pub const GENERIC_SW_AVG: f64 = 2.0;
/// See [`GENERIC_SW_AVG`].
pub const GENERIC_SW_RAT: f64 = 8.0;
/// See [`GENERIC_SW_AVG`].
pub const GENERIC_SAFE_AVG: f64 = 1.6;
/// §6.2.2: hardware generic arithmetic reduces the cost to 1.3%; a type
/// dispatch on *every* arithmetic operation would add 2.7% on average.
pub const GENERIC_HW_AVG: f64 = 1.3;
/// See [`GENERIC_HW_AVG`].
pub const ALL_DISPATCH_OVERHEAD: f64 = 2.7;

/// §3: adding full run-time checking slows programs down by 25% on average,
/// ranging from ~6% to ~88%.
pub const CHECKING_SLOWDOWN_AVG: f64 = 25.0;
/// See [`CHECKING_SLOWDOWN_AVG`].
pub const CHECKING_SLOWDOWN_RANGE: (f64, f64) = (6.0, 88.0);
