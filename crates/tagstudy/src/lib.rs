//! The measurement framework: runs the ten benchmarks under tag-implementation
//! configurations and regenerates every table and figure of Steenkiste &
//! Hennessy (ASPLOS 1987).
//!
//! # Architecture
//!
//! The crate is organised around three layers:
//!
//! - [`Config`] — one point in the study's design space (tag scheme × checking
//!   mode × hardware support). `Config` is `Copy + Hash + Eq`, so a
//!   `(program, Config)` pair identifies a measurement.
//! - [`Session`] — the experiment engine. A session owns a measurement cache
//!   keyed by `(program, Config)`, a bounded worker pool that fills it in
//!   parallel, and an observability surface: cache hit/miss counters, compile
//!   vs simulate wall-time attribution ([`Timing`]), and an optional
//!   [`Progress`] callback for live status. Every design-space point is
//!   compiled and simulated at most once per session, no matter how many
//!   tables ask for it.
//! - [`tables`] — pure projections over a session. Each `*_for` function takes
//!   `&mut Session`, requests the measurements it needs (batched, so the pool
//!   can run them concurrently), and folds them into a table struct:
//!
//!   - [`tables::table1_for`] — execution-time increase from full run-time
//!     checking, split into arithmetic/vector/list categories;
//!   - [`tables::figure1_for`] — time spent on tag insertion/removal/
//!     extraction/checking, with and without run-time checking;
//!   - [`tables::figure2_for`] — instruction-frequency reduction when tag
//!     masking is eliminated (and the no-op/squash comeback);
//!   - [`tables::table2_for`] — cycles eliminated by each software/hardware
//!     support level, including the SPUR comparison of §7;
//!   - [`tables::table3_for`] — static program statistics;
//!   - [`tables::generic_arith_study_for`] — §4.2/§6.2.2: the arithmetic-safe
//!     tag encoding, trap hardware, and the wrong-bias float sweep.
//!
//! Because the projections share configurations (Table 1, Figure 1 and
//! Table 3 all use the HighTag5 baselines; Table 2 revisits several hardware
//! levels), regenerating *everything* through one session does a fraction of
//! the work of regenerating each table in isolation:
//!
//! ```no_run
//! use tagstudy::{tables, Session};
//!
//! let mut session = Session::new(); // workers = available_parallelism()
//! let names = tables::default_programs();
//! let t1 = tables::table1_for(&mut session, &names)?;
//! let t2 = tables::table2_for(&mut session, &names)?; // baselines reused
//! eprintln!("{}", session.summary()); // hits/misses, compile vs simulate time
//! # Ok::<(), tagstudy::StudyError>(())
//! ```
//!
//! Paper reference values are embedded in [`paper`] so reports can print
//! side-by-side comparisons.
//!
//! For long-lived processes, [`Session::with_writeback`] and [`Session::seed`]
//! are the persistence hooks the `store` crate's durable result store (and the
//! `tagstudyd` daemon built on it) plug into: every fresh measurement is
//! written through, and a restarted process preloads the cache so repeat
//! queries are answered without simulating.

#![deny(missing_docs)]

mod config;
mod measure;
pub mod metrics;
pub mod paper;
pub mod report;
mod session;
pub mod tables;
pub mod trace;

pub use config::Config;
pub use lisp::CheckingMode;
pub use measure::{run_benchmark, run_program, InlineProgram, Measurement, StudyError, Timing};
pub use metrics::{Event, Histogram, Json, MetricsRegistry};
pub use mipsx::Backend;
pub use session::{Progress, Session, SessionStats};
pub use trace::{SpanId, SpanRecord, TraceContext, TraceId, TraceRecord, Tracer};
