//! The measurement framework: runs the ten benchmarks under tag-implementation
//! configurations and regenerates every table and figure of Steenkiste &
//! Hennessy (ASPLOS 1987).
//!
//! The crate is organised around [`Config`] (one point in the study's design
//! space), [`run_program`]/[`run_all`] (measured, output-validated executions),
//! and the [`tables`] module, which computes:
//!
//! - [`tables::table1`] — execution-time increase from full run-time checking,
//!   split into arithmetic/vector/list categories;
//! - [`tables::figure1`] — time spent on tag insertion/removal/extraction/
//!   checking, with and without run-time checking;
//! - [`tables::figure2`] — instruction-frequency reduction when tag masking is
//!   eliminated (and the no-op/squash comeback the paper observes);
//! - [`tables::table2`] — cycles eliminated by each software/hardware support
//!   level, including the SPUR comparison of §7;
//! - [`tables::table3`] — static program statistics;
//! - [`tables::generic_arith_study_for`] — §4.2/§6.2.2: the arithmetic-safe tag
//!   encoding, trap hardware, and the wrong-bias float sweep.
//!
//! Paper reference values are embedded in [`paper`] so reports can print
//! side-by-side comparisons.

#![deny(missing_docs)]

mod config;
mod measure;
pub mod paper;
pub mod report;
pub mod tables;

pub use config::Config;
pub use lisp::CheckingMode;
pub use measure::{run_all, run_benchmark, run_program, Measurement, StudyError};
