//! The ten benchmark programs of Steenkiste & Hennessy (ASPLOS 1987), re-created
//! in the `lisp` dialect of this repository.
//!
//! The paper's set (its Appendix) mixes an interpreter, a deductive retriever (run
//! twice, once with a heap small enough that the copying collector dominates), a
//! rational-function evaluator, two compiler passes, a frame-language inventory
//! system, and three Gabriel benchmarks. The same mix is reproduced here — each
//! program is a faithful, scaled re-implementation exercising the same data types
//! (lists vs. vectors vs. arithmetic), because that mix is what drives the
//! per-program variation in the paper's Table 1.
//!
//! Every benchmark prints a result that [`Benchmark::expected_output`] pins down,
//! so the measurement harness can assert functional correctness under every tag
//! scheme, checking mode and hardware configuration.
//!
//! # Example
//!
//! ```
//! use programs::{all, by_name};
//!
//! assert_eq!(all().len(), 10);
//! let boyer = by_name("boyer").unwrap();
//! assert!(boyer.source.contains("tautologyp"));
//! ```

#![deny(missing_docs)]

use lisp::{compile, run, CompileError, CompiledProgram, Options, Outcome};

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short name, as in the paper's tables.
    pub name: &'static str,
    /// What the program does (adapted from the paper's Appendix).
    pub description: &'static str,
    /// The Lisp source.
    pub source: &'static str,
    /// Exact expected simulator output; asserted by the harness in every
    /// configuration.
    pub expected_output: &'static str,
    /// Per-semispace heap bytes. `dedgc` uses a heap small enough that the
    /// copying collector accounts for a large share of run time, as in the paper.
    pub heap_semi_bytes: u32,
}

impl Benchmark {
    /// Compile this benchmark under `opts` (the benchmark's heap size overrides
    /// the one in `opts`).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] (which, for the checked-in sources, indicates
    /// a toolchain regression).
    pub fn compile(&self, opts: &Options) -> Result<CompiledProgram, CompileError> {
        let opts = Options {
            heap_semi_bytes: self.heap_semi_bytes,
            ..*opts
        };
        compile(self.source, &opts)
    }

    /// Compile and run, asserting the expected output.
    ///
    /// # Panics
    ///
    /// Panics when compilation or simulation fails or the output differs —
    /// benchmarks are trusted inputs, so any failure is a toolchain bug.
    pub fn run_checked(&self, opts: &Options) -> Outcome {
        let c = self
            .compile(opts)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", self.name));
        let o = run(&c, FUEL).unwrap_or_else(|e| panic!("{}: run failed: {e}", self.name));
        assert_eq!(o.halt_code, lisp::exit_code::OK, "{}: bad exit", self.name);
        assert_eq!(
            o.output, self.expected_output,
            "{}: wrong output",
            self.name
        );
        o
    }
}

/// Cycle budget generous enough for the slowest benchmark in the slowest
/// configuration.
pub const FUEL: u64 = 2_000_000_000;

const DEFAULT_HEAP: u32 = 768 << 10;
/// Small heap for `dedgc`, sized just above the program's peak live set so the
/// copying collector runs constantly (paper: "about 50% of its time in the
/// garbage collector"; we reach roughly a quarter to a third — see
/// EXPERIMENTS.md).
const DEDGC_HEAP: u32 = 18_944;

macro_rules! bench {
    ($name:literal, $desc:literal, $file:literal, $expect:expr, $heap:expr) => {
        Benchmark {
            name: $name,
            description: $desc,
            source: include_str!(concat!("../lisp/", $file)),
            expected_output: $expect,
            heap_semi_bytes: $heap,
        }
    };
}

/// All ten benchmarks, in the paper's table order.
pub fn all() -> &'static [Benchmark] {
    &BENCHMARKS
}

/// Look a benchmark up by its table name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// The benchmark names, in the paper's table order.
pub fn names() -> Vec<&'static str> {
    BENCHMARKS.iter().map(|b| b.name).collect()
}

static BENCHMARKS: [Benchmark; 10] = [
    bench!(
        "inter",
        "a simple interpreter for a subset of LISP; computes Fibonacci numbers and sorts a list",
        "inter.lisp",
        "(0 1 2 3 4 5 6 7 8 9)\n55\n610\n",
        DEFAULT_HEAP
    ),
    bench!(
        "deduce",
        "a deductive information retriever over an indexed fact base",
        "deduce.lisp",
        DEDUCE_EXPECT,
        DEFAULT_HEAP
    ),
    bench!(
        "dedgc",
        "deduce with a small heap: the copying garbage collector dominates",
        "deduce.lisp",
        DEDUCE_EXPECT,
        DEDGC_HEAP
    ),
    bench!(
        "rat",
        "a rational function evaluator (exact rational arithmetic, Horner evaluation)",
        "rat.lisp",
        RAT_EXPECT,
        DEFAULT_HEAP
    ),
    bench!(
        "comp",
        "the first pass of a compiler front-end: expressions to stack code",
        "comp.lisp",
        COMP_EXPECT,
        DEFAULT_HEAP
    ),
    bench!(
        "opt",
        "the compiler's optimizer pass: peephole rewriting over code vectors",
        "opt.lisp",
        OPT_EXPECT,
        DEFAULT_HEAP
    ),
    bench!(
        "frl",
        "a simple inventory system using a frame representation language",
        "frl.lisp",
        FRL_EXPECT,
        DEFAULT_HEAP
    ),
    bench!(
        "boyer",
        "the Boyer benchmark: rewrite-rule simplifier plus a dumb tautology checker",
        "boyer.lisp",
        "t\n",
        DEFAULT_HEAP
    ),
    bench!(
        "brow",
        "a short version of the Browse benchmark: builds and pattern-matches an AI-style database of units",
        "brow.lisp",
        BROW_EXPECT,
        DEFAULT_HEAP
    ),
    bench!(
        "trav",
        "a short version of the Traverse benchmark: creates and repeatedly traverses a graph of vector-structures",
        "trav.lisp",
        TRAV_EXPECT,
        DEFAULT_HEAP
    ),
];

// Expected outputs are pinned by the first verified run and then asserted across
// every configuration; see crates/programs/tests/.
const DEDUCE_EXPECT: &str = include_str!("../expected/deduce.txt");
const RAT_EXPECT: &str = include_str!("../expected/rat.txt");
const COMP_EXPECT: &str = include_str!("../expected/comp.txt");
const OPT_EXPECT: &str = include_str!("../expected/opt.txt");
const FRL_EXPECT: &str = include_str!("../expected/frl.txt");
const BROW_EXPECT: &str = include_str!("../expected/brow.txt");
const TRAV_EXPECT: &str = include_str!("../expected/trav.txt");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_order() {
        let names: Vec<_> = all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            ["inter", "deduce", "dedgc", "rat", "comp", "opt", "frl", "boyer", "brow", "trav"]
        );
    }

    #[test]
    fn lookup() {
        assert!(by_name("rat").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn dedgc_shares_deduce_source_with_smaller_heap() {
        let d = by_name("deduce").unwrap();
        let g = by_name("dedgc").unwrap();
        assert_eq!(d.source, g.source);
        assert!(g.heap_semi_bytes < d.heap_semi_bytes / 8);
    }

    #[test]
    fn descriptions_are_meaningful() {
        for b in all() {
            assert!(b.description.len() > 20, "{}", b.name);
            assert!(!b.expected_output.is_empty(), "{}", b.name);
        }
    }
}
