//! Functional validation: every benchmark must produce its pinned output under
//! every tag scheme, both checking modes, and representative hardware configs.

use lisp::{CheckingMode, Options};
use mipsx::{HwConfig, ParallelCheck};
use tagword::ALL_SCHEMES;

fn configs() -> Vec<(String, Options)> {
    let mut v = Vec::new();
    for scheme in ALL_SCHEMES {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            v.push((
                format!("{scheme}/{checking:?}/plain"),
                Options::new(scheme, checking),
            ));
        }
    }
    // Hardware variants on the paper's baseline scheme.
    let s = tagword::TagScheme::HighTag5;
    for (name, hw) in [
        ("tagbr", HwConfig::with_tag_branch()),
        ("drop", HwConfig::with_address_drop(5)),
        (
            "chk-lists",
            HwConfig::with_parallel_check(ParallelCheck::Lists),
        ),
        ("chk-all", HwConfig::with_parallel_check(ParallelCheck::All)),
        ("genarith", HwConfig::with_generic_arith()),
        ("maximal", HwConfig::maximal(5)),
    ] {
        v.push((
            format!("high5/Full/{name}"),
            Options {
                hw,
                ..Options::new(s, CheckingMode::Full)
            },
        ));
    }
    v
}

#[test]
fn every_benchmark_everywhere() {
    for b in programs::all() {
        for (cname, opts) in configs() {
            let o = b.run_checked(&opts);
            assert!(o.stats.cycles > 0, "{} {cname}", b.name);
        }
    }
}

#[test]
fn dedgc_spends_substantial_time_collecting() {
    // The paper: "the program spends about 50% of its time in the garbage
    // collector". Compare dedgc cycles against deduce cycles: the small heap
    // must add a large GC component.
    let opts = Options::new(tagword::TagScheme::HighTag5, CheckingMode::None);
    let base = programs::by_name("deduce").unwrap().run_checked(&opts);
    let gc = programs::by_name("dedgc").unwrap().run_checked(&opts);
    let ratio = gc.stats.cycles as f64 / base.stats.cycles as f64;
    assert!(
        ratio > 1.2,
        "dedgc must be much slower than deduce (got {ratio:.2}x: {} vs {})",
        gc.stats.cycles,
        base.stats.cycles
    );
}

#[test]
fn workloads_are_simulator_sized() {
    let opts = Options::new(tagword::TagScheme::HighTag5, CheckingMode::None);
    for b in programs::all() {
        let o = b.run_checked(&opts);
        assert!(
            o.stats.cycles > 500_000,
            "{}: too small ({} cycles)",
            b.name,
            o.stats.cycles
        );
        assert!(
            o.stats.cycles < 400_000_000,
            "{}: too large ({} cycles)",
            b.name,
            o.stats.cycles
        );
    }
}
