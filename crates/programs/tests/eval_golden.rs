//! Golden tests for the tree-walking reference evaluator.
//!
//! The evaluator ([`lisp::eval`]) is the differential oracle's source of
//! truth, so it must reproduce every benchmark's pinned output without ever
//! touching codegen or the simulator — and its trap behaviour must match the
//! compiled system's `ERR_*` exit codes case by case.

use lisp::eval::{eval_source, EvalOptions};
use lisp::{exit_code, CheckingMode, Options};
use tagword::TagScheme;

/// Every benchmark, evaluated under the narrowest fixnum range in the sweep
/// (HighTag6's 26 bits), reproduces its pinned output exactly. Passing under
/// the narrowest range proves no benchmark result is scheme-dependent.
#[test]
fn all_ten_benchmarks_match_their_pinned_output() {
    for b in programs::all() {
        let outcome = eval_source(b.source, &EvalOptions::for_scheme(TagScheme::HighTag6))
            .unwrap_or_else(|e| panic!("{}: evaluator failed: {e}", b.name));
        assert_eq!(
            outcome.halt_code,
            exit_code::OK,
            "{}: evaluator trapped",
            b.name
        );
        assert_eq!(
            outcome.output, b.expected_output,
            "{}: evaluator output differs from pinned output",
            b.name
        );
        // A benchmark that exercised no primitive at all would make the
        // census vacuous; all ten do real work.
        assert!(outcome.census.prim_ops > 0, "{}: empty census", b.name);
    }
}

/// Error paths: for each trapping program, the evaluator's halt code must
/// equal the compiled-and-simulated halt code, not merely "some error".
#[test]
fn evaluator_traps_match_compiled_traps() {
    let cases: &[(&str, &str, i32)] = &[
        ("car of a fixnum", "(print (car 5))", exit_code::ERR_CAR),
        ("cdr of a fixnum", "(print (cdr 5))", exit_code::ERR_CAR),
        ("rplaca of a non-pair", "(rplaca 3 4)", exit_code::ERR_CAR),
        (
            "getv of a non-vector",
            "(print (getv 9 0))",
            exit_code::ERR_VEC,
        ),
        (
            "vector index out of bounds",
            "(print (getv (mkvect 2) 7))",
            exit_code::ERR_BOUNDS,
        ),
        (
            "negative vector index",
            "(print (getv (mkvect 2) (minus 1)))",
            exit_code::ERR_BOUNDS,
        ),
        (
            "arith on a symbol",
            "(print (plus (quote a) 1))",
            exit_code::ERR_ARITH,
        ),
        (
            "division by zero",
            "(print (quotient 1 0))",
            exit_code::ERR_DIV0,
        ),
        (
            "remainder by zero",
            "(print (remainder 1 0))",
            exit_code::ERR_DIV0,
        ),
        (
            "funcall of an undefined symbol",
            "(funcall (quote no-such-fn) 1)",
            exit_code::ERR_FUNCALL,
        ),
    ];
    let eval_opts = EvalOptions::for_scheme(TagScheme::HighTag5);
    let compile_opts = Options::new(TagScheme::HighTag5, CheckingMode::Full);
    for (label, source, want) in cases {
        let eval = eval_source(source, &eval_opts)
            .unwrap_or_else(|e| panic!("{label}: evaluator failed: {e}"));
        assert_eq!(eval.halt_code, *want, "{label}: evaluator halt code");

        let compiled = lisp::compile(source, &compile_opts)
            .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
        let sim = lisp::run(&compiled, 10_000_000)
            .unwrap_or_else(|e| panic!("{label}: simulation failed: {e}"));
        assert_eq!(
            sim.halt_code, eval.halt_code,
            "{label}: simulator and evaluator disagree on the trap"
        );
        // Output printed before the trap must agree too.
        assert_eq!(sim.output, eval.output, "{label}: pre-trap output");
    }
}

/// Overflow is range-dependent: the same add overflows 26-bit fixnums but
/// not 30-bit ones, and the evaluator tracks the configured width.
#[test]
fn overflow_tracks_the_configured_fixnum_width() {
    let max26 = (1i64 << 25) - 1;
    let source = format!("(print (plus {max26} 1))");
    let narrow = eval_source(&source, &EvalOptions::for_scheme(TagScheme::HighTag6)).unwrap();
    assert_eq!(narrow.halt_code, exit_code::ERR_OVERFLOW);
    let wide = eval_source(&source, &EvalOptions::for_scheme(TagScheme::LowTag2)).unwrap();
    assert_eq!(wide.halt_code, exit_code::OK);
    assert_eq!(wide.output, format!("{}\n", max26 + 1));
}
