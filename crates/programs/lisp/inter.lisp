; inter: a simple interpreter for a subset of LISP, adapted from "Lisp in Lisp"
; (Winston & Horn). Interprets insertion sort over a ten-element list and the
; Fibonacci function at 10 and 15.
;
; The interpreted language: integers, quote, if, lambda, define (global
; definitions), and the primitives add sub less kons kar kdr null?.

(defvar *defs* nil)

(defun idefine (name params body)
  (setq *defs* (cons (cons name (list 'closure params body nil)) *defs*))
  name)

(defun ilookup (x env)
  (let ((b (assq x env)))
    (if b (cdr b)
      (let ((d (assq x *defs*)))
        (if d (cdr d) x)))))            ; unknown symbols name primitives

(defun iev (x env)
  (cond ((intp x) x)
        ((null x) nil)
        ((eq x 't) t)
        ((idp x) (ilookup x env))
        ((eq (car x) 'quote) (cadr x))
        ((eq (car x) 'if)
         (if (iev (cadr x) env)
             (iev (caddr x) env)
             (iev (cadddr x) env)))
        ((eq (car x) 'lambda) (list 'closure (cadr x) (caddr x) env))
        (t (iap (iev (car x) env) (ievlis (cdr x) env)))))

(defun ievlis (l env)
  (if (null l) nil
    (cons (iev (car l) env) (ievlis (cdr l) env))))

(defun ibind (params args env)
  (let ((e env))
    (while (pairp params)
      (setq e (cons (cons (car params) (car args)) e))
      (setq params (cdr params))
      (setq args (cdr args)))
    e))

(defun iap (f args)
  (cond ((idp f) (iprim f args))
        ((pairp f) (iev (caddr f) (ibind (cadr f) args (cadddr f))))
        (t nil)))

(defun iprim (f args)
  (cond ((eq f 'add) (plus (car args) (cadr args)))
        ((eq f 'sub) (difference (car args) (cadr args)))
        ((eq f 'less) (lessp (car args) (cadr args)))
        ((eq f 'kons) (cons (car args) (cadr args)))
        ((eq f 'kar) (car (car args)))
        ((eq f 'kdr) (cdr (car args)))
        ((eq f 'null?) (null (car args)))
        (t nil)))

; --- the interpreted programs ---------------------------------------------

(idefine 'fib '(n)
  '(if (less n 2) n (add (fib (sub n 1)) (fib (sub n 2)))))

(idefine 'ins '(x l)
  '(if (null? l) (kons x (quote ()))
     (if (less x (kar l)) (kons x l)
       (kons (kar l) (ins x (kdr l))))))

(idefine 'isort '(l)
  '(if (null? l) (quote ())
     (ins (kar l) (isort (kdr l)))))

(print (iev '(isort (quote (5 2 8 1 9 3 7 4 6 0))) nil))
(print (iev '(fib 10) nil))
(print (iev '(fib 15) nil))
