; deduce: a deductive information retriever, adapted from Charniak, Riesbeck &
; McDermott's "Artificial Intelligence Programming". Facts are indexed by
; predicate (a one-level discrimination net kept on the predicate symbol's
; property list); queries are patterns with variables, and conjunctive queries
; join binding environments. A small backward chainer proves goals through
; if-then rules.
;
; Entities are small integers so the fact base can be generated; predicates and
; variables are symbols.

(defvar *preds* nil)

(defun add-fact (f)
  (let ((p (car f)))
    (if (null (memq p *preds*))
        (setq *preds* (cons p *preds*))
        nil)
    (put p 'facts (cons f (get p 'facts)))
    f))

(defun variablep (x)
  (and (idp x) (memq x '(?x ?y ?z ?u ?v ?w))))

; match pattern against datum, threading an a-list of bindings.
; bindings start as ((t . t)) so nil means failure.
(defun pmatch (pat dat binds)
  (cond ((null binds) nil)
        ((variablep pat)
         (let ((b (assq pat binds)))
           (if (and b (not (variablep (cdr b))))
               (if (equal (cdr b) dat) binds nil)
               (cons (cons pat dat) binds))))
        ((atom pat) (if (eq pat dat) binds nil))
        ((atom dat) nil)
        (t (pmatch (cdr pat) (cdr dat) (pmatch (car pat) (car dat) binds)))))

; retrieve: all binding environments that match pat against stored facts.
(defun retrieve (pat binds)
  (let ((fs (get (car pat) 'facts)) (out nil))
    (while (pairp fs)
      (let ((b (pmatch pat (car fs) binds)))
        (if b (setq out (cons b out)) nil))
      (setq fs (cdr fs)))
    out))

; substitute bindings into a pattern.
(defun psubst (pat binds)
  (cond ((variablep pat)
         (let ((b (assq pat binds)))
           (if b (cdr b) pat)))
        ((atom pat) pat)
        (t (cons (psubst (car pat) binds) (psubst (cdr pat) binds)))))

; conjunctive query: a list of patterns; returns all binding environments.
(defun retrieve-all (pats binds)
  (if (null pats) (list binds)
    (let ((first-matches (prove (psubst (car pats) binds) binds))
          (out nil))
      (while (pairp first-matches)
        (setq out (append (retrieve-all (cdr pats) (car first-matches)) out))
        (setq first-matches (cdr first-matches)))
      out)))

; rules: (head pat1 pat2 ...) meaning head <- pat1 & pat2 ...
(defvar *rules* nil)
(defun add-rule (r) (setq *rules* (cons r *rules*)))

(defvar *depth* 0)

; prove a goal: stored facts plus backward chaining through rules.
(defun prove (goal binds)
  (let ((out (retrieve goal binds)))
    (if (greaterp *depth* 6) out
        (let ((rs *rules*))
          (setq *depth* (add1 *depth*))
          (while (pairp rs)
            (let ((b (pmatch (caar rs) goal '((t . t)))))
              (if b
                  (let ((solutions (retrieve-all (cdar rs) b)))
                    (while (pairp solutions)
                      (let ((merged (pmatch goal (psubst (caar rs) (car solutions)) binds)))
                        (if merged (setq out (cons merged out)) nil))
                      (setq solutions (cdr solutions))))
                  nil))
            (setq rs (cdr rs)))
          (setq *depth* (sub1 *depth*))
          out))))

(defun count-solutions (pats)
  (length (retrieve-all pats '((t . t)))))

; --- build the fact base ---------------------------------------------------
; a three-generation family over integer-named people: parent i -> 2i, 2i+1
(defun build-family (n)
  (let ((i 1))
    (while (lessp i n)
      (add-fact (list 'parent i (times 2 i)))
      (add-fact (list 'parent i (add1 (times 2 i))))
      (if (eq (remainder i 2) 0)
          (add-fact (list 'male i))
          (add-fact (list 'female i)))
      (setq i (add1 i)))))

(build-family 16)

(add-rule '((father ?u ?v) (parent ?u ?v) (male ?u)))
(add-rule '((mother ?u ?v) (parent ?u ?v) (female ?u)))
(add-rule '((grandparent ?u ?w) (parent ?u ?v) (parent ?v ?w)))
(add-rule '((sibling ?v ?w) (parent ?u ?v) (parent ?u ?w)))

; --- queries ---------------------------------------------------------------
(defvar total (count-solutions '((grandparent 1 ?z))))
(print total)

(print (count-solutions '((father ?x ?y) (grandparent ?x ?z))))
(print (count-solutions '((sibling ?y ?z) (male ?y))))
