; frl: a simple inventory system using a frame representation language,
; following the FRL style: frames are symbols, slots live on property lists,
; and the ako (a-kind-of) link provides inheritance. The inventory tracks
; parts with quantities, unit costs and reorder points; queries walk the
; frame hierarchy.

; --- the frame language -----------------------------------------------------
(defun fput (frame slot value)
  (put frame slot value))

(defun fget-local (frame slot)
  (get frame slot))

; inherited lookup through the ako chain
(defun fget (frame slot)
  (let ((v (get frame slot)))
    (if v v
        (let ((parent (get frame 'ako)))
          (if parent (fget parent slot) nil)))))

(defvar *frames* nil)
(defun defframe (name parent)
  (setq *frames* (cons name *frames*))
  (if parent (fput name 'ako parent) nil)
  name)

; collect all frames that inherit (directly or not) from `root`
(defun akop (f root)
  (cond ((null f) nil)
        ((eq f root) t)
        (t (akop (get f 'ako) root))))

(defun instances-of (root)
  (let ((fs *frames*) (out nil))
    (while (pairp fs)
      (if (and (akop (car fs) root) (not (eq (car fs) root)))
          (setq out (cons (car fs) out))
          nil)
      (setq fs (cdr fs)))
    out))

; --- the inventory ------------------------------------------------------------
(defframe 'part nil)
(fput 'part 'unit-cost 10)
(fput 'part 'reorder-at 5)

(defframe 'mechanical 'part)
(defframe 'electrical 'part)
(fput 'electrical 'unit-cost 45)

(defframe 'engine 'mechanical)
(fput 'engine 'unit-cost 900)
(fput 'engine 'stock 3)
(fput 'engine 'reorder-at 4)

(defframe 'wheel 'mechanical)
(fput 'wheel 'unit-cost 75)
(fput 'wheel 'stock 2)

(defframe 'axle 'mechanical)
(fput 'axle 'stock 40)

(defframe 'bolt 'mechanical)
(fput 'bolt 'unit-cost 1)
(fput 'bolt 'stock 500)

(defframe 'alternator 'electrical)
(fput 'alternator 'stock 12)

(defframe 'starter 'electrical)
(fput 'starter 'unit-cost 120)
(fput 'starter 'stock 7)

(defframe 'harness 'electrical)
(fput 'harness 'stock 30)

(defframe 'brake-pad 'mechanical)
(fput 'brake-pad 'unit-cost 22)
(fput 'brake-pad 'stock 4)
(fput 'brake-pad 'reorder-at 8)

; --- queries -------------------------------------------------------------------
(defun stock-value (root)
  (let ((fs (instances-of root)) (total 0))
    (while (pairp fs)
      (let ((s (fget (car fs) 'stock)))
        (if s (setq total (plus total (times s (fget (car fs) 'unit-cost)))) nil))
      (setq fs (cdr fs)))
    total))

(defun needs-reorder (root)
  (let ((fs (instances-of root)) (out nil))
    (while (pairp fs)
      (let ((s (fget (car fs) 'stock)))
        (if (and s (lessp s (fget (car fs) 'reorder-at)))
            (setq out (cons (car fs) out))
            nil))
      (setq fs (cdr fs)))
    out))

; simulate receipts and issues over a few cycles, then report
(defun issue (f n)
  (fput f 'stock (difference (fget f 'stock) n)))

(defun receive (f n)
  (fput f 'stock (plus (fget f 'stock) n)))

(defvar day 0)
(defvar value-trace 0)
(while (lessp day 120)
  (issue 'bolt 3)
  (issue 'wheel 0)
  (receive 'harness 1)
  (if (eq (remainder day 6) 0) (issue 'alternator 1) nil)
  (if (eq (remainder day 8) 0) (receive 'engine 1) nil)
  ; nightly reporting walks the whole frame hierarchy
  (setq value-trace (remainder (plus value-trace (stock-value 'part)) 99991))
  (needs-reorder 'part)
  (setq day (add1 day)))

(print (stock-value 'part))
(print value-trace)
(print (length (instances-of 'part)))
(print (needs-reorder 'part))
