; brow: a short version of the Browse benchmark (Gabriel). Creates an AI-style
; database of units, each carrying a few randomly generated pattern
; expressions, then browses through it matching query patterns containing
; element wildcards (?) and segment wildcards (*) — the segment matcher's
; backtracking dominates, as in the original.

; --- deterministic pseudo-random numbers --------------------------------------
(defvar seed 74755)
(defun rand (m)
  ; take high-order bits: the low-order residues of a small LCG are correlated
  (setq seed (remainder (plus (times seed 81) 74) 32767))
  (remainder (quotient seed 13) m))

; --- the matcher ----------------------------------------------------------------
(defun match (pat dat)
  (cond ((null pat) (null dat))
        ((eq (car pat) '?)
         (and (pairp dat) (match (cdr pat) (cdr dat))))
        ((eq (car pat) '*)
         (or (match (cdr pat) dat)
             (and (pairp dat) (match pat (cdr dat)))))
        ((pairp (car pat))
         (and (pairp dat)
              (pairp (car dat))
              (match (car pat) (car dat))
              (match (cdr pat) (cdr dat))))
        (t (and (pairp dat)
                (eq (car pat) (car dat))
                (match (cdr pat) (cdr dat))))))

; --- random data generation -------------------------------------------------------
(defvar atoms '(a b c d foo bar baz))

(defun random-atom ()
  (nth atoms (rand 7)))

; a flat random list of n atoms
(defun random-flat (n)
  (if (leq n 0) nil
    (cons (random-atom) (random-flat (sub1 n)))))

; a pattern expression of given depth: atoms, one sublist, trailing atoms
(defun random-expr (depth)
  (if (leq depth 0)
      (random-flat (add1 (rand 4)))
    (append (random-flat (add1 (rand 3)))
            (cons (random-expr (sub1 depth))
                  (random-flat (rand 3))))))

; units: a list of (patterns ...) bundles
(defun make-units (n)
  (if (leq n 0) nil
    (cons (list (random-expr 2) (random-expr 1) (random-expr 2))
          (make-units (sub1 n)))))

(defvar db (make-units 30))

; --- browsing -----------------------------------------------------------------------
(defun count-matches (pat)
  (let ((units db) (n 0))
    (while (pairp units)
      (let ((pats (car units)))
        (while (pairp pats)
          (if (match pat (car pats)) (setq n (add1 n)) nil)
          (setq pats (cdr pats))))
      (setq units (cdr units)))
    n))

(defvar q1 '(* c * d *))
(defvar q2 '(* foo ? *))
(defvar q3 '(* (* c *) *))

(defvar reps 10)
(defvar results nil)
(while (greaterp reps 0)
  (setq results (list (count-matches q1) (count-matches q2) (count-matches q3)))
  (setq reps (sub1 reps)))
(print results)
