; trav: a short version of the Traverse benchmark (Gabriel). Creates a graph
; of nodes represented as structures — implemented as vectors, as in the
; paper's PSL — and repeatedly traverses it, flipping marks. Nearly all data
; accesses go through vectors, which is why this program tops the paper's
; vector-checking column.

; node: [0]=mark [1]=sons [2]=entry [3]=visits [4..7]=payload
(defvar nnodes 60)
(defvar nodes (mkvect 60))

(defvar seed 12345)
(defun rand (m)
  (setq seed (remainder (plus (times seed 141) 28411) 134456))
  (remainder seed m))

(defun make-nodes ()
  (let ((i 0))
    (while (lessp i nnodes)
      (let ((v (mkvect 8)))
        (putv v 0 0)
        (putv v 1 nil)
        (putv v 2 i)
        (putv v 3 0)
        (putv v 4 i)
        (putv v 5 0)
        (putv v 6 i)
        (putv v 7 0)
        (putv nodes i v))
      (setq i (add1 i)))))

(defun add-edge (a b)
  (let ((v (getv nodes a)))
    (putv v 1 (cons (getv nodes b) (getv v 1)))))

(defun build-graph ()
  (make-nodes)
  ; a ring, so everything is reachable
  (let ((i 0))
    (while (lessp i nnodes)
      (add-edge i (remainder (add1 i) nnodes))
      (setq i (add1 i))))
  ; plus random chords
  (let ((k 0))
    (while (lessp k 240)
      (add-edge (rand nnodes) (rand nnodes))
      (setq k (add1 k)))))

; traverse: visit every node not yet carrying `mark`, count visits
(defun traverse (node mark)
  (if (eq (getv node 0) mark) 0
    (progn
      (putv node 0 mark)
      (putv node 3 (add1 (getv node 3)))
      ; rotate the payload slots (structure-field traffic, as in Gabriel's
      ; eleven-slot traverse nodes)
      (putv node 5 (getv node 4))
      (putv node 4 (getv node 6))
      (putv node 6 (getv node 7))
      (putv node 7 (getv node 2))
      (let ((sons (getv node 1)) (count 1))
        (while (pairp sons)
          (setq count (plus count (traverse (car sons) mark)))
          (setq sons (cdr sons)))
        count))))

(build-graph)

(defvar first-count (traverse (getv nodes 0) 1))
(print first-count)

(defvar total 0)
(defvar mark 2)
(while (leq mark 49)
  (setq total (plus total (traverse (getv nodes (rand nnodes)) mark)))
  (setq mark (add1 mark)))
(print total)
