; comp: the first pass of a compiler front-end, modelled on the PSL compiler's
; pass one. Translates an expression language — integers, variables, let,
; if, and the operators add/sub/mul — into linear stack-machine code
; (instruction lists), with a lexical environment for slot allocation and
; constant folding of literal subexpressions.
;
; The test corpus is generated structurally so the pass sees deep trees.

; --- instruction constructors ----------------------------------------------
(defun ins-const (n) (list 'const n))
(defun ins-load (i) (list 'load i))
(defun ins-store (i) (list 'store i))
(defun ins-op (o) (list o))

; --- environment: list of names; slot = position -----------------------------
(defun slot-of (v env)
  (let ((i 0) (found nil))
    (while (and (null found) (pairp env))
      (if (eq (car env) v) (setq found t)
          (progn (setq i (add1 i)) (setq env (cdr env)))))
    (if found i nil)))

(defun constantp (x) (intp x))

; constant folding for binary operators
(defun fold (op a b)
  (cond ((eq op 'add) (plus a b))
        ((eq op 'sub) (difference a b))
        ((eq op 'mul) (times a b))
        (t 0)))

; --- the translator -----------------------------------------------------------
; returns a list of instructions, consumed in order by a stack machine
(defun comp-expr (x env)
  (cond ((constantp x) (list (ins-const x)))
        ((idp x)
         (let ((s (slot-of x env)))
           (if s (list (ins-load s)) (list (ins-const 0)))))
        ((eq (car x) 'let)
         ; (let v init body)
         (let ((v (cadr x)) (init (caddr x)) (body (cadddr x)))
           (append (comp-expr init env)
                   (append (list (ins-store (length env)))
                           (comp-expr body (append env (list v)))))))
        ((eq (car x) 'if)
         ; (if c a b) -> c (branch n) a (jump m) b
         (let ((cc (comp-expr (cadr x) env))
               (ca (comp-expr (caddr x) env))
               (cb (comp-expr (cadddr x) env)))
           (append cc
                   (append (list (list 'brz (add1 (length ca))))
                           (append ca
                                   (append (list (list 'jmp (length cb)))
                                           cb))))))
        (t
         ; binary operator, with constant folding
         (let ((a (cadr x)) (b (caddr x)))
           (if (and (constantp a) (constantp b))
               (list (ins-const (fold (car x) a b)))
               (append (comp-expr a env)
                       (append (comp-expr b env)
                               (list (ins-op (car x))))))))))

; --- code metrics: census of opcode classes -----------------------------------
(defun census (code kind)
  (let ((n 0))
    (while (pairp code)
      (if (eq (caar code) kind) (setq n (add1 n)) nil)
      (setq code (cdr code)))
    n))

; --- generate a corpus of expressions ----------------------------------------
; expr(d): depth-d tree mixing let/if/operators deterministically
(defun gen-expr (d salt)
  (if (leq d 0)
      (if (eq (remainder salt 3) 0) 'x0
          (if (eq (remainder salt 3) 1) 'x1 (remainder salt 13)))
      (let ((w (remainder salt 5)))
        (cond ((eq w 0) (list 'let 'x1 (gen-expr (sub1 d) (plus salt 1))
                              (gen-expr (sub1 d) (plus salt 3))))
              ((eq w 1) (list 'if (gen-expr (sub1 d) (plus salt 5))
                              (gen-expr (sub1 d) (plus salt 7))
                              (gen-expr (sub1 d) (plus salt 11))))
              ((eq w 2) (list 'add (gen-expr (sub1 d) (plus salt 2))
                              (gen-expr (sub1 d) (plus salt 4))))
              ((eq w 3) (list 'sub (gen-expr (sub1 d) (plus salt 6))
                              (gen-expr (sub1 d) (plus salt 8))))
              (t (list 'mul (gen-expr (sub1 d) (plus salt 10))
                       (gen-expr (sub1 d) (plus salt 12))))))))

(defvar total-len 0)
(defvar n-consts 0)
(defvar n-loads 0)
(defvar n-branches 0)
(defvar n-exprs 0)

(defun driver (n)
  (let ((i 0))
    (while (lessp i n)
      (let ((code (comp-expr (gen-expr 6 i) '(x0))))
        (setq total-len (plus total-len (length code)))
        (setq n-consts (plus n-consts (census code 'const)))
        (setq n-loads (plus n-loads (census code 'load)))
        (setq n-branches (plus n-branches (census code 'brz)))
        (setq n-exprs (add1 n-exprs)))
      (setq i (add1 i)))))

(driver 14)

(print n-exprs)
(print total-len)
(print (list n-consts n-loads n-branches))
