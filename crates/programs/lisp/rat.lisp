; rat: a rational function evaluator, in the spirit of the evaluator shipped
; with PSL. Rational numbers are (num . den) pairs kept in lowest terms with a
; positive denominator; polynomials are coefficient lists (constant term
; first). Rational functions p(x)/q(x) are evaluated exactly at rational
; points with Horner's rule — the most arithmetic-intensive program in the set.
;
; The sweep tracks the extrema and a threshold count (rather than an exact sum)
; so every intermediate product stays inside the narrowest fixnum range of the
; tag schemes under study; there are no bignums in this system, as in early
; PSL configurations.

(defun gcd2 (a b)
  (setq a (abs a))
  (setq b (abs b))
  (while (greaterp b 0)
    (let ((r (remainder a b)))
      (setq a b)
      (setq b r)))
  a)

(defun make-rat (n d)
  (if (lessp d 0) (progn (setq n (minus n)) (setq d (minus d))) nil)
  (let ((g (gcd2 n d)))
    (if (greaterp g 1)
        (cons (quotient n g) (quotient d g))
        (cons n d))))

(defun rat+ (a b)
  (make-rat (plus (times (car a) (cdr b)) (times (car b) (cdr a)))
            (times (cdr a) (cdr b))))

(defun rat- (a b)
  (make-rat (difference (times (car a) (cdr b)) (times (car b) (cdr a)))
            (times (cdr a) (cdr b))))

(defun rat* (a b)
  (make-rat (times (car a) (car b)) (times (cdr a) (cdr b))))

(defun rat/ (a b)
  (make-rat (times (car a) (cdr b)) (times (cdr a) (car b))))

(defun rat< (a b)
  (lessp (times (car a) (cdr b)) (times (car b) (cdr a))))

; Horner evaluation of a polynomial (integer coefficients) at a rational.
(defun poly-eval (p x)
  (let ((acc (cons 0 1)) (rp (reverse p)))
    (while (pairp rp)
      (setq acc (rat+ (rat* acc x) (cons (car rp) 1)))
      (setq rp (cdr rp)))
    acc))

; A rational function is (num-poly . den-poly).
(defun ratfun-eval (f x)
  (rat/ (poly-eval (car f) x) (poly-eval (cdr f) x)))

(defvar f1 '((1 -3 2) . (4 1)))          ; (2x^2 - 3x + 1) / (x + 4)
(defvar f2 '((0 2 1) . (1 0 1)))         ; (x^2 + 2x) / (x^2 + 1)

; Evaluate f at k/2 for k = 1..n; report (max min count-above-threshold).
(defun sweep (f n threshold)
  (let ((k 1) (vmax nil) (vmin nil) (count 0))
    (while (leq k n)
      (let ((v (ratfun-eval f (make-rat k 2))))
        (if (or (null vmax) (rat< vmax v)) (setq vmax v) nil)
        (if (or (null vmin) (rat< v vmin)) (setq vmin v) nil)
        (if (rat< threshold v) (setq count (add1 count)) nil))
      (setq k (add1 k)))
    (list vmax vmin count)))

(defun print-rat (r)
  (wrint (car r))
  (wrch 47)                              ; '/'
  (wrint (cdr r))
  (terpri))

(defvar r1 nil)
(defvar r2 nil)
(defvar reps 12)
(while (greaterp reps 0)
  (setq r1 (sweep f1 20 (cons 5 1)))
  (setq r2 (sweep f2 20 (cons 1 1)))
  (setq reps (sub1 reps)))

(print-rat (car r1))
(print-rat (cadr r1))
(print (caddr r1))
(print-rat (car r2))
(print-rat (cadr r2))
(print (caddr r2))
(print-rat (rat- (rat* (cadr r1) (cons 8 3)) (rat/ (car r2) (cons 7 5))))
