; boyer: the Boyer benchmark (Gabriel) — a rewrite-rule-based simplifier
; combined with a dumb tautology checker, scaled to simulator size. Lemmas are
; stored on the leading function symbol's property list; terms are rewritten
; bottom-up to if-normal form, then checked by case analysis.

(defvar unify-subst nil)

(defun add-lemma (term)
  ; term = (equal lhs rhs)
  (let ((lhs (cadr term)))
    (put (car lhs) 'lemmas (cons term (get (car lhs) 'lemmas)))))

(defun apply-subst (alist term)
  (cond ((atom term)
         (let ((b (assq term alist)))
           (if b (cdr b) term)))
        (t (cons (car term) (apply-subst-lst alist (cdr term))))))

(defun apply-subst-lst (alist lst)
  (if (null lst) nil
    (cons (apply-subst alist (car lst)) (apply-subst-lst alist (cdr lst)))))

(defun one-way-unify (term1 term2)
  (setq unify-subst nil)
  (one-way-unify1 term1 term2))

(defun one-way-unify1 (term1 term2)
  (cond ((atom term2)
         (let ((b (assq term2 unify-subst)))
           (if b (equal term1 (cdr b))
             (progn (setq unify-subst (cons (cons term2 term1) unify-subst)) t))))
        ((atom term1) nil)
        ((eq (car term1) (car term2))
         (one-way-unify1-lst (cdr term1) (cdr term2)))
        (t nil)))

(defun one-way-unify1-lst (l1 l2)
  (cond ((null l1) (null l2))
        ((null l2) nil)
        ((one-way-unify1 (car l1) (car l2))
         (one-way-unify1-lst (cdr l1) (cdr l2)))
        (t nil)))

(defun rewrite (term)
  (if (atom term) term
    (rewrite-with-lemmas (cons (car term) (rewrite-args (cdr term)))
                         (get (car term) 'lemmas))))

(defun rewrite-args (lst)
  (if (null lst) nil
    (cons (rewrite (car lst)) (rewrite-args (cdr lst)))))

(defun rewrite-with-lemmas (term lst)
  (cond ((null lst) term)
        ((one-way-unify term (cadr (car lst)))
         (rewrite (apply-subst unify-subst (caddr (car lst)))))
        (t (rewrite-with-lemmas term (cdr lst)))))

(defun truep (x lst)
  (or (equal x '(t)) (member x lst)))

(defun falsep (x lst)
  (or (equal x '(f)) (member x lst)))

(defun tautologyp (x true-lst false-lst)
  (cond ((truep x true-lst) t)
        ((falsep x false-lst) nil)
        ((atom x) nil)
        ((eq (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (t (and (tautologyp (caddr x) (cons (cadr x) true-lst) false-lst)
                       (tautologyp (cadddr x) true-lst (cons (cadr x) false-lst))))))
        (t nil)))

(defun tautp (x)
  (tautologyp (rewrite x) nil nil))

; --- the lemma base (a representative subset of Gabriel's) -------------------
(add-lemma '(equal (and p q) (if p (if q (t) (f)) (f))))
(add-lemma '(equal (or p q) (if p (t) (if q (t) (f)))))
(add-lemma '(equal (not p) (if p (f) (t))))
(add-lemma '(equal (implies p q) (if p (if q (t) (f)) (t))))
(add-lemma '(equal (plus (plus x y) z) (plus x (plus y z))))
(add-lemma '(equal (equal (plus a b) (zero)) (and (zerop a) (zerop b))))
(add-lemma '(equal (difference x x) (zero)))
(add-lemma '(equal (equal (plus a b) (plus a c)) (equal b c)))
(add-lemma '(equal (equal (zero) (difference x y)) (not (lessp y x))))
(add-lemma '(equal (times x (plus y z)) (plus (times x y) (times x z))))
(add-lemma '(equal (times (times x y) z) (times x (times y z))))
(add-lemma '(equal (equal (times x y) (zero)) (or (zerop x) (zerop y))))
(add-lemma '(equal (append (append x y) z) (append x (append y z))))
(add-lemma '(equal (reverse (append a b)) (append (reverse b) (reverse a))))
(add-lemma '(equal (member x (append a b)) (or (member x a) (member x b))))
(add-lemma '(equal (member x (reverse y)) (member x y)))
(add-lemma '(equal (length (reverse x)) (length x)))
(add-lemma '(equal (zerop x) (equal x (zero))))
(add-lemma '(equal (lessp (remainder x y) y) (not (zerop y))))
(add-lemma '(equal (remainder x x) (zero)))
(add-lemma '(equal (lessp (plus x y) (plus x z)) (lessp y z)))
(add-lemma '(equal (lessp (times x z) (times y z)) (and (not (zerop z)) (lessp x y))))
(add-lemma '(equal (lessp y (plus x y)) (not (zerop x))))
(add-lemma '(equal (equal (append a b) (append a c)) (equal b c)))
(add-lemma '(equal (nth (nil*) i) (if (zerop i) (nil*) (ntho))))
; if-normalization: lifts if-conditions so the tautology checker's case
; analysis sees atomic-enough tests (the classic boyer rewrite)
(add-lemma '(equal (if (if a b c) d e) (if a (if b d e) (if c d e))))

; --- the theorem ---------------------------------------------------------------
(defvar the-subst
  '((x . (f (plus (plus a b) (plus c (zero)))))
    (y . (f (times (times a b) (plus c d))))
    (z . (f (reverse (append (append a b) (nil*)))))
    (u . (equal (plus a b) (difference x y)))
    (w . (lessp (remainder a b) (member a (length b))))))

(defvar the-term
  '(implies (and (implies x y)
                 (and (implies y z) (implies z u)))
            (implies x u)))

(defvar result (tautp (apply-subst the-subst the-term)))
(print result)
