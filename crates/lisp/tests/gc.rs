//! Garbage-collector behaviour tests: cyclic structures, shared structure
//! identity, deep stacks as roots, vectors of vectors, and heap exhaustion —
//! all across every tag scheme (the collector's tag inspections differ per
//! scheme, so each scheme exercises different code).

use lisp::{compile, exit_code, run, CheckingMode, Options};
use tagword::ALL_SCHEMES;

fn run_small_heap(src: &str, scheme: tagword::TagScheme) -> mipsx::Outcome {
    let opts = Options {
        heap_semi_bytes: 12 << 10,
        ..Options::new(scheme, CheckingMode::Full)
    };
    let c = compile(src, &opts).expect("compiles");
    run(&c, 200_000_000).expect("runs")
}

#[test]
fn cyclic_structure_survives_collection() {
    // Tie a list into a ring, churn to force collections, then probe the ring.
    let src = r#"
        (defvar ring (list 1 2 3))
        (rplacd (cddr ring) ring)
        (defun churn (n)
          (while (greaterp n 0)
            (list n n n n)
            (setq n (sub1 n))))
        (churn 2500)
        (print (car ring))
        (print (cadr ring))
        (print (cadddr ring))        ; wraps around: the 1 again
        (print (eq ring (cdddr ring)))
    "#;
    for scheme in ALL_SCHEMES {
        let o = run_small_heap(src, scheme);
        assert_eq!(o.halt_code, exit_code::OK, "{scheme}");
        assert_eq!(o.output, "1\n2\n1\nt\n", "{scheme}");
    }
}

#[test]
fn shared_structure_stays_shared() {
    // A diamond: y's car and cdr are the *same* pair; copying must not split it.
    let src = r#"
        (defvar x (list 10 20))
        (defvar y (cons x x))
        (defun churn (n)
          (while (greaterp n 0)
            (cons n n)
            (setq n (sub1 n))))
        (churn 4000)
        (print (eq (car y) (cdr y)))
        (rplaca (car y) 99)
        (print (car (cdr y)))        ; visible through the other edge
    "#;
    for scheme in ALL_SCHEMES {
        let o = run_small_heap(src, scheme);
        assert_eq!(o.output, "t\n99\n", "{scheme}");
    }
}

#[test]
fn deep_stack_frames_are_roots() {
    // Values live only in deep stack frames must survive collections triggered
    // at the recursion's leaf.
    let src = r#"
        (defun deep (n)
          (let ((mine (cons n n)))
            (if (greaterp n 0)
                (plus (deep (sub1 n)) (car mine))
                (progn (churn 2000) (car mine)))))
        (defun churn (n)
          (while (greaterp n 0)
            (cons n n)
            (setq n (sub1 n))))
        (print (deep 100))
    "#;
    for scheme in ALL_SCHEMES {
        let o = run_small_heap(src, scheme);
        assert_eq!(o.output, "5050\n", "{scheme}");
    }
}

#[test]
fn vectors_of_vectors_move_consistently() {
    let src = r#"
        (defvar outer (mkvect 4))
        (defun fill ()
          (let ((i 0))
            (while (lessp i 4)
              (let ((inner (mkvect 3)))
                (putv inner 0 i)
                (putv inner 2 (cons i i))
                (putv outer i inner))
              (setq i (add1 i)))))
        (fill)
        (defun churn (n)
          (while (greaterp n 0)
            (mkvect 5)
            (setq n (sub1 n))))
        (churn 1500)
        (defun probe ()
          (let ((i 0) (acc 0))
            (while (lessp i 4)
              (setq acc (plus acc (getv (getv outer i) 0)))
              (setq acc (plus acc (car (getv (getv outer i) 2))))
              (setq i (add1 i)))
            acc))
        (print (probe))
    "#;
    for scheme in ALL_SCHEMES {
        let o = run_small_heap(src, scheme);
        assert_eq!(o.output, "12\n", "{scheme}"); // 2*(0+1+2+3)
    }
}

#[test]
fn plists_are_roots() {
    // Heap structure reachable only through a symbol's property list.
    let src = r#"
        (put 'anchor 'payload (list 7 8 9))
        (defun churn (n)
          (while (greaterp n 0)
            (list n n)
            (setq n (sub1 n))))
        (churn 3000)
        (print (get 'anchor 'payload))
    "#;
    for scheme in ALL_SCHEMES {
        let o = run_small_heap(src, scheme);
        assert_eq!(o.output, "(7 8 9)\n", "{scheme}");
    }
}

#[test]
fn heap_exhaustion_is_a_clean_stop() {
    // A structure that cannot fit even after collection must stop with the
    // out-of-memory exit code, not corrupt anything.
    let src = r#"
        (defvar keep nil)
        (defun grow (n)
          (while (greaterp n 0)
            (setq keep (cons n keep))
            (setq n (sub1 n))))
        (grow 100000)
        (print (length keep))
    "#;
    let opts = Options {
        heap_semi_bytes: 12 << 10,
        ..Options::new(tagword::TagScheme::HighTag5, CheckingMode::None)
    };
    let c = compile(src, &opts).unwrap();
    let o = run(&c, 500_000_000).unwrap();
    assert_eq!(o.halt_code, exit_code::ERR_OOM);
}

#[test]
fn float_boxes_survive_collection() {
    let src = r#"
        (defvar f (fplus (float 2) 0.5))
        (defun churn (n)
          (while (greaterp n 0)
            (float n)
            (setq n (sub1 n))))
        (churn 3000)
        (print (flessp f (float 3)))
        (print (flessp (float 2) f))
    "#;
    for scheme in ALL_SCHEMES {
        let o = run_small_heap(src, scheme);
        assert_eq!(o.output, "t\nt\n", "{scheme}");
    }
}

#[test]
fn collection_count_scales_with_churn() {
    // More garbage means more collections means more cycles, with identical
    // results — a sanity check that the collector actually runs repeatedly.
    let mk = |churn: u32| {
        format!(
            r#"
            (defvar keep (list 1 2 3))
            (defun churn (n)
              (while (greaterp n 0)
                (list n n n)
                (setq n (sub1 n))))
            (churn {churn})
            (print keep)
            "#
        )
    };
    let opts = Options {
        heap_semi_bytes: 10 << 10,
        ..Options::new(tagword::TagScheme::HighTag5, CheckingMode::None)
    };
    let little = run(&compile(&mk(500), &opts).unwrap(), 200_000_000).unwrap();
    let lots = run(&compile(&mk(5000), &opts).unwrap(), 200_000_000).unwrap();
    assert_eq!(little.output, "(1 2 3)\n");
    assert_eq!(lots.output, "(1 2 3)\n");
    assert!(lots.stats.cycles > little.stats.cycles * 5);
}
