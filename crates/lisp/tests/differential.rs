//! Differential testing: randomly generated, type-correct-by-construction Lisp
//! programs are evaluated by a Rust reference interpreter and must produce the
//! same answer when compiled and simulated under every tag scheme and checking
//! mode. A deliberately tiny heap keeps the copying collector in the loop.

use proptest::prelude::*;

use lisp::{compile, run, CheckingMode, Options};
use tagword::{TagScheme, ALL_SCHEMES};

/// Expressions typed by construction: `I` yields a fixnum, `L` a (possibly
/// empty) list of fixnums, `B` a boolean (nil / non-nil).
#[derive(Debug, Clone)]
enum I {
    Lit(i32),
    Var(usize), // one of the three integer parameters
    Add(Box<I>, Box<I>),
    Sub(Box<I>, Box<I>),
    Neg(Box<I>),
    Add1(Box<I>),
    Sub1(Box<I>),
    Len(Box<L>),
    If(Box<B>, Box<I>, Box<I>),
    CarOr(Box<L>, Box<I>), // (if (pairp l) (car l) fallback)
    Min(Box<I>, Box<I>),
    Max(Box<I>, Box<I>),
}

#[derive(Debug, Clone)]
enum L {
    Nil,
    Cons(Box<I>, Box<L>),
    CdrOrNil(Box<L>), // (if (pairp l) (cdr l) nil)
    Rev(Box<L>),
    App(Box<L>, Box<L>),
}

#[derive(Debug, Clone)]
enum B {
    Less(Box<I>, Box<I>),
    NumEq(Box<I>, Box<I>),
    Null(Box<L>),
    Pairp(Box<L>),
    And(Box<B>, Box<B>),
    Or(Box<B>, Box<B>),
    Not(Box<B>),
}

// --- rendering to Lisp source ------------------------------------------------

fn ri(e: &I, out: &mut String) {
    match e {
        I::Lit(v) => out.push_str(&v.to_string()),
        I::Var(i) => out.push_str(["va", "vb", "vc"][*i]),
        I::Add(a, b) => bin(out, "plus", |o| ri(a, o), |o| ri(b, o)),
        I::Sub(a, b) => bin(out, "difference", |o| ri(a, o), |o| ri(b, o)),
        I::Neg(a) => un(out, "minus", |o| ri(a, o)),
        I::Add1(a) => un(out, "add1", |o| ri(a, o)),
        I::Sub1(a) => un(out, "sub1", |o| ri(a, o)),
        I::Len(l) => un(out, "length", |o| rl(l, o)),
        I::If(c, t, f) => tern(out, |o| rb(c, o), |o| ri(t, o), |o| ri(f, o)),
        I::CarOr(l, d) => {
            out.push_str("(if (pairp ");
            rl(l, out);
            out.push_str(") (car ");
            rl(l, out);
            out.push_str(") ");
            ri(d, out);
            out.push(')');
        }
        I::Min(a, b) => bin(out, "min2", |o| ri(a, o), |o| ri(b, o)),
        I::Max(a, b) => bin(out, "max2", |o| ri(a, o), |o| ri(b, o)),
    }
}

fn rl(e: &L, out: &mut String) {
    match e {
        L::Nil => out.push_str("nil"),
        L::Cons(h, t) => bin(out, "cons", |o| ri(h, o), |o| rl(t, o)),
        L::CdrOrNil(l) => {
            out.push_str("(if (pairp ");
            rl(l, out);
            out.push_str(") (cdr ");
            rl(l, out);
            out.push_str(") nil)");
        }
        L::Rev(l) => un(out, "reverse", |o| rl(l, o)),
        L::App(a, b) => bin(out, "append", |o| rl(a, o), |o| rl(b, o)),
    }
}

fn rb(e: &B, out: &mut String) {
    match e {
        B::Less(a, b) => bin(out, "lessp", |o| ri(a, o), |o| ri(b, o)),
        B::NumEq(a, b) => bin(out, "eqn", |o| ri(a, o), |o| ri(b, o)),
        B::Null(l) => un(out, "null", |o| rl(l, o)),
        B::Pairp(l) => un(out, "pairp", |o| rl(l, o)),
        B::And(a, b) => bin(out, "and", |o| rb(a, o), |o| rb(b, o)),
        B::Or(a, b) => bin(out, "or", |o| rb(a, o), |o| rb(b, o)),
        B::Not(a) => un(out, "not", |o| rb(a, o)),
    }
}

fn un(out: &mut String, op: &str, a: impl FnOnce(&mut String)) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    a(out);
    out.push(')');
}

fn bin(out: &mut String, op: &str, a: impl FnOnce(&mut String), b: impl FnOnce(&mut String)) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    a(out);
    out.push(' ');
    b(out);
    out.push(')');
}

fn tern(
    out: &mut String,
    c: impl FnOnce(&mut String),
    t: impl FnOnce(&mut String),
    f: impl FnOnce(&mut String),
) {
    out.push_str("(if ");
    c(out);
    out.push(' ');
    t(out);
    out.push(' ');
    f(out);
    out.push(')');
}

// --- the reference interpreter ------------------------------------------------

fn ei(e: &I, env: &[i64; 3]) -> i64 {
    match e {
        I::Lit(v) => i64::from(*v),
        I::Var(i) => env[*i],
        I::Add(a, b) => ei(a, env) + ei(b, env),
        I::Sub(a, b) => ei(a, env) - ei(b, env),
        I::Neg(a) => -ei(a, env),
        I::Add1(a) => ei(a, env) + 1,
        I::Sub1(a) => ei(a, env) - 1,
        I::Len(l) => el(l, env).len() as i64,
        I::If(c, t, f) => {
            if eb(c, env) {
                ei(t, env)
            } else {
                ei(f, env)
            }
        }
        I::CarOr(l, d) => {
            let v = el(l, env);
            v.first().copied().unwrap_or_else(|| ei(d, env))
        }
        I::Min(a, b) => ei(a, env).min(ei(b, env)),
        I::Max(a, b) => ei(a, env).max(ei(b, env)),
    }
}

fn el(e: &L, env: &[i64; 3]) -> Vec<i64> {
    match e {
        L::Nil => vec![],
        L::Cons(h, t) => {
            let mut v = vec![ei(h, env)];
            v.extend(el(t, env));
            v
        }
        L::CdrOrNil(l) => {
            let v = el(l, env);
            if v.is_empty() {
                v
            } else {
                v[1..].to_vec()
            }
        }
        L::Rev(l) => {
            let mut v = el(l, env);
            v.reverse();
            v
        }
        L::App(a, b) => {
            let mut v = el(a, env);
            v.extend(el(b, env));
            v
        }
    }
}

fn eb(e: &B, env: &[i64; 3]) -> bool {
    match e {
        B::Less(a, b) => ei(a, env) < ei(b, env),
        B::NumEq(a, b) => ei(a, env) == ei(b, env),
        B::Null(l) => el(l, env).is_empty(),
        B::Pairp(l) => !el(l, env).is_empty(),
        B::And(a, b) => eb(a, env) && eb(b, env),
        B::Or(a, b) => eb(a, env) || eb(b, env),
        B::Not(a) => !eb(a, env),
    }
}

// --- strategies ----------------------------------------------------------------

fn int_expr() -> impl Strategy<Value = I> {
    let leaf = prop_oneof![(-50i32..50).prop_map(I::Lit), (0usize..3).prop_map(I::Var)];
    leaf.prop_recursive(5, 48, 3, |inner| {
        let list = list_expr_with(inner.clone());
        let boolean = bool_expr_with(inner.clone(), list.clone());
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| I::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| I::Sub(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| I::Neg(Box::new(a))),
            inner.clone().prop_map(|a| I::Add1(Box::new(a))),
            inner.clone().prop_map(|a| I::Sub1(Box::new(a))),
            list.clone().prop_map(|l| I::Len(Box::new(l))),
            (boolean, inner.clone(), inner.clone()).prop_map(|(c, t, f)| I::If(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            (list, inner.clone()).prop_map(|(l, d)| I::CarOr(Box::new(l), Box::new(d))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| I::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| I::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn list_expr_with(ints: BoxedStrategy<I>) -> BoxedStrategy<L> {
    let leaf = Just(L::Nil).boxed();
    leaf.prop_recursive(4, 24, 3, move |inner| {
        let ints = ints.clone();
        prop_oneof![
            (ints.clone(), inner.clone()).prop_map(|(h, t)| L::Cons(Box::new(h), Box::new(t))),
            inner.clone().prop_map(|l| L::CdrOrNil(Box::new(l))),
            inner.clone().prop_map(|l| L::Rev(Box::new(l))),
            (inner.clone(), inner).prop_map(|(a, b)| L::App(Box::new(a), Box::new(b))),
        ]
        .boxed()
    })
    .boxed()
}

fn bool_expr_with(ints: BoxedStrategy<I>, lists: BoxedStrategy<L>) -> BoxedStrategy<B> {
    let leaf = prop_oneof![
        (ints.clone(), ints.clone()).prop_map(|(a, b)| B::Less(Box::new(a), Box::new(b))),
        (ints, ints2()).prop_map(|(a, b)| B::NumEq(Box::new(a), Box::new(b))),
        lists.clone().prop_map(|l| B::Null(Box::new(l))),
        lists.prop_map(|l| B::Pairp(Box::new(l))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| B::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| B::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| B::Not(Box::new(a))),
        ]
    })
    .boxed()
}

fn ints2() -> BoxedStrategy<I> {
    (-50i32..50).prop_map(I::Lit).boxed()
}

// --- the property ------------------------------------------------------------------

fn run_case(expr: &I, args: [i32; 3], scheme: TagScheme, checking: CheckingMode) -> String {
    let mut body = String::new();
    ri(expr, &mut body);
    let src = format!(
        "(defun probe (va vb vc) {body})\n(print (probe {} {} {}))\n",
        args[0], args[1], args[2]
    );
    let opts = Options {
        heap_semi_bytes: 8 << 10, // tiny: keep the collector busy
        ..Options::new(scheme, checking)
    };
    let compiled = compile(&src, &opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let o = run(&compiled, 80_000_000).unwrap_or_else(|e| panic!("run failed: {e}\n{src}"));
    assert_eq!(o.halt_code, 0, "error stop {} on\n{src}", o.halt_code);
    o.output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Reference semantics hold under every tag scheme with full checking, and
    /// under the baseline scheme without checking.
    #[test]
    fn simulated_matches_reference(expr in int_expr(), a in -40i32..40, b in -40i32..40, c in -40i32..40) {
        let env = [i64::from(a), i64::from(b), i64::from(c)];
        let expected = format!("{}\n", ei(&expr, &env));
        for scheme in ALL_SCHEMES {
            let got = run_case(&expr, [a, b, c], scheme, CheckingMode::Full);
            prop_assert_eq!(&got, &expected, "scheme {} (full checking)", scheme);
        }
        let got = run_case(&expr, [a, b, c], TagScheme::HighTag5, CheckingMode::None);
        prop_assert_eq!(&got, &expected, "high5, no checking");
        // §4.1 method 1 must agree too (it sees positive AND negative operands).
        let opts = Options {
            int_test_method: lisp::IntTestMethod::TagCompare,
            heap_semi_bytes: 8 << 10,
            ..Options::new(TagScheme::HighTag5, CheckingMode::Full)
        };
        let mut body = String::new();
        ri(&expr, &mut body);
        let src = format!(
            "(defun probe (va vb vc) {body})\n(print (probe {a} {b} {c}))\n"
        );
        let compiled = compile(&src, &opts).expect("compiles (tagcmp)");
        let o = run(&compiled, 80_000_000).expect("runs (tagcmp)");
        prop_assert_eq!(&o.output, &expected, "high5, tag-compare int test");
    }
}
