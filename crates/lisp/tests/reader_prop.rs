//! Property tests for the reader: print → parse round-trips, and the printer's
//! output inside the simulator agrees with the host-side `Display`.

use proptest::prelude::*;

use lisp::{compile, parse_one, run, Options, Sexp};

/// Symbol names matching `[a-z][a-z0-9-]{0,6}`.
fn symbol_name() -> impl Strategy<Value = String> {
    const HEAD: &[char] = &['a', 'b', 'c', 'd', 'k', 'q', 'x', 'z'];
    const TAIL: &[char] = &['a', 'e', 'm', 's', 'y', '0', '3', '9', '-'];
    (
        prop::sample::select(HEAD.to_vec()),
        prop::collection::vec(prop::sample::select(TAIL.to_vec()), 0..7),
    )
        .prop_map(|(h, t)| std::iter::once(h).chain(t).collect())
}

fn atom() -> impl Strategy<Value = Sexp> {
    prop_oneof![
        (-99999i32..99999).prop_map(Sexp::Int),
        symbol_name().prop_map(Sexp::Sym),
    ]
}

fn sexp() -> impl Strategy<Value = Sexp> {
    atom().prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Sexp::list),
            (prop::collection::vec(inner.clone(), 1..3), inner).prop_map(
                |(items, tail)| match tail {
                    // dotted tails that are lists normalise; use atoms only
                    Sexp::List(..) => Sexp::list(items),
                    t => Sexp::List(items, Some(Box::new(t))),
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse is the identity.
    #[test]
    fn display_parse_round_trip(s in sexp()) {
        let text = s.to_string();
        let back = parse_one(&text).expect("rendered sexp parses");
        prop_assert_eq!(back, s);
    }

    /// The *simulated* printer (the Lisp prelude's prin1 running on the
    /// simulated machine) agrees with the host-side renderer.
    #[test]
    fn simulated_printer_matches_display(s in sexp()) {
        // keep fixnums in every scheme's range
        fn ok(s: &Sexp) -> bool {
            match s {
                Sexp::Int(v) => *v >= -(1 << 25) && *v < (1 << 25),
                // nil/t print fine but participate in quote/list normalisation;
                // exclude them (and quote itself) so the comparison stays exact.
                Sexp::Sym(n) => n != "nil" && n != "t" && n != "quote",
                Sexp::List(items, tail) => {
                    items.iter().all(ok) && tail.as_deref().map(ok).unwrap_or(true)
                }
                Sexp::Float(_) => false,
            }
        }
        prop_assume!(ok(&s));
        let text = s.to_string();
        let src = format!("(print '{text})");
        let c = compile(&src, &Options::default()).expect("compiles");
        let o = run(&c, 10_000_000).expect("runs");
        prop_assert_eq!(o.output, format!("{text}\n"));
    }
}
