//! Language-semantics battery: each case pins the behaviour of one construct,
//! run under a mixed set of configurations (the full cross-product lives in the
//! benchmark validation tests).

use lisp::{compile, run, CheckingMode, Options};
use tagword::TagScheme;

fn eval(src: &str) -> String {
    eval_with(src, Options::new(TagScheme::HighTag5, CheckingMode::Full))
}

fn eval_with(src: &str, opts: Options) -> String {
    let c = compile(src, &opts).unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
    let o = run(&c, 50_000_000).unwrap_or_else(|e| panic!("run: {e}\n{src}"));
    assert_eq!(o.halt_code, 0, "error stop {} for {src}", o.halt_code);
    o.output
}

#[test]
fn conditionals() {
    assert_eq!(eval("(print (if nil 1 2))"), "2\n");
    assert_eq!(eval("(print (if 0 1 2))"), "1\n", "0 is truthy in Lisp");
    assert_eq!(eval("(print (if '() 1 2))"), "2\n", "() is nil");
    assert_eq!(
        eval("(print (if (atom nil) 'yes 'no))"),
        "yes\n",
        "nil is an atom"
    );
    assert_eq!(eval("(print (cond))"), "nil\n");
    assert_eq!(
        eval("(print (cond (nil 1) (7) (t 3)))"),
        "7\n",
        "test-only clause yields its value"
    );
    assert_eq!(eval("(print (when t 1 2 3))"), "3\n");
    assert_eq!(eval("(print (unless t 1))"), "nil\n");
}

#[test]
fn boolean_forms() {
    assert_eq!(eval("(print (and))"), "t\n");
    assert_eq!(eval("(print (or))"), "nil\n");
    assert_eq!(
        eval("(print (and 1 2 3))"),
        "3\n",
        "and yields the last value"
    );
    assert_eq!(
        eval("(print (or nil 5 9))"),
        "5\n",
        "or yields the first truthy value"
    );
    assert_eq!(
        eval("(defvar hit nil) (and nil (setq hit t)) (print hit)"),
        "nil\n",
        "and short-circuits"
    );
    assert_eq!(
        eval("(defvar hit nil) (or 1 (setq hit t)) (print hit)"),
        "nil\n",
        "or short-circuits"
    );
}

#[test]
fn let_scoping_and_shadowing() {
    assert_eq!(
        eval("(defun f (x) (let ((x (plus x 1))) x)) (print (f 5))"),
        "6\n"
    );
    assert_eq!(
        eval("(defun f () (let ((a 1)) (let ((a 2) (b a)) (list a b)))) (print (f))"),
        "(2 1)\n",
        "inner binding list evaluates inits before binding"
    );
    assert_eq!(
        eval("(defun f () (let (u v) (list u v))) (print (f))"),
        "(nil nil)\n"
    );
}

#[test]
fn while_value_and_mutation() {
    assert_eq!(
        eval("(defun f (n) (let ((i 0)) (while (lessp i n) (setq i (add1 i))) i)) (print (f 7))"),
        "7\n"
    );
    assert_eq!(eval("(defun f () (while nil 1)) (print (f))"), "nil\n");
}

#[test]
fn deep_recursion_within_stack() {
    assert_eq!(
        eval("(defun count (n) (if (eq n 0) 0 (add1 (count (sub1 n))))) (print (count 2000))"),
        "2000\n"
    );
}

#[test]
fn arithmetic_edges() {
    assert_eq!(eval("(print (minus 0))"), "0\n");
    assert_eq!(
        eval("(print (quotient -7 2))"),
        "-3\n",
        "truncating division"
    );
    assert_eq!(eval("(print (remainder -7 2))"), "-1\n");
    assert_eq!(eval("(print (times -3 -4))"), "12\n");
    assert_eq!(eval("(print (lessp -5 -4))"), "t\n");
    assert_eq!(eval("(print (eqn 3 3))"), "t\n");
    assert_eq!(eval("(print (geq 3 3))"), "t\n");
    // fixnum boundary values of the active scheme
    let max = TagScheme::HighTag5.max_int();
    assert_eq!(
        eval(&format!("(print (plus {} 0))", max)),
        format!("{max}\n")
    );
    let min = TagScheme::HighTag5.min_int();
    assert_eq!(
        eval(&format!("(print (sub1 (plus {} 1)))", min)),
        format!("{min}\n")
    );
}

#[test]
fn list_primitives() {
    assert_eq!(eval("(print (car '(a)))"), "a\n");
    assert_eq!(eval("(print (cdr '(a)))"), "nil\n");
    assert_eq!(eval("(print (rplaca (cons 1 2) 9))"), "(9 . 2)\n");
    assert_eq!(eval("(print (rplacd (cons 1 2) 9))"), "(1 . 9)\n");
    assert_eq!(eval("(print (cadddr '(1 2 3 4 5)))"), "4\n");
    assert_eq!(eval("(print (nconc (list 1 2) (list 3)))"), "(1 2 3)\n");
    assert_eq!(
        eval("(print (copy-tree '((a) (b (c)))))"),
        "((a) (b (c)))\n"
    );
    assert_eq!(
        eval("(defvar x '(1 2)) (print (eq x (copy-list x))) (print (equal x (copy-list x)))"),
        "nil\nt\n"
    );
}

#[test]
fn printing_shapes() {
    assert_eq!(eval("(print '(1 (2 3) . 4))"), "(1 (2 3) . 4)\n");
    assert_eq!(eval("(print ''a)"), "(quote a)\n");
    assert_eq!(eval("(print -123)"), "-123\n");
    assert_eq!(eval("(print t)"), "t\n");
    assert_eq!(eval("(prin1 'no-newline)"), "no-newline");
    assert_eq!(eval("(print (mkvect 0))"), "[]\n");
    assert_eq!(eval("(print 3.5)"), "#\n", "floats print as a placeholder");
}

#[test]
fn vectors_edges() {
    assert_eq!(eval("(print (upbv (mkvect 0)))"), "0\n");
    assert_eq!(
        eval("(defvar v (mkvect 3)) (putv v 2 (putv v 0 'x)) (print v)"),
        "[x nil x]\n",
        "putv returns the stored value"
    );
    // vectors can hold vectors
    assert_eq!(
        eval("(defvar v (mkvect 2)) (putv v 0 (mkvect 1)) (print (upbv (getv v 0)))"),
        "1\n"
    );
}

#[test]
fn funcall_and_function() {
    assert_eq!(
        eval("(defun sq (x) (times x x)) (print (funcall (function sq) 7))"),
        "49\n"
    );
    assert_eq!(
        eval(
            "(defun pick (which) (if which 'add1 'sub1))\n(print (funcall (pick t) 5))\n(print (funcall (pick nil) 5))"
        ),
        "6\n4\n"
    );
    assert_eq!(
        eval("(defun const () 42) (print (funcall 'const))"),
        "42\n",
        "zero-argument funcall"
    );
}

#[test]
fn type_predicates() {
    let cases = [
        ("(intp 3)", "t"),
        ("(intp 'a)", "nil"),
        ("(pairp '(1))", "t"),
        ("(pairp nil)", "nil"),
        ("(idp 'a)", "t"),
        ("(idp 3)", "nil"),
        ("(idp nil)", "t"),
        ("(vectorp (mkvect 1))", "t"),
        ("(vectorp '(1))", "nil"),
        ("(floatp (float 1))", "t"),
        ("(floatp 1)", "nil"),
        ("(atom 'a)", "t"),
        ("(atom '(a))", "nil"),
        ("(null nil)", "t"),
        ("(not 3)", "nil"),
    ];
    for scheme in tagword::ALL_SCHEMES {
        for (expr, want) in cases {
            let got = eval_with(
                &format!("(print {expr})"),
                Options::new(scheme, CheckingMode::Full),
            );
            assert_eq!(got, format!("{want}\n"), "{expr} under {scheme}");
        }
    }
}

#[test]
fn property_list_shadowing_and_types() {
    assert_eq!(
        eval("(put 'k 'p 1) (put 'k 'q 2) (put 'k 'p 3) (print (list (get 'k 'p) (get 'k 'q)))"),
        "(3 2)\n"
    );
    // keys can be any eq-comparable value, including fixnums
    assert_eq!(eval("(put 'k 5 'five) (print (get 'k 5))"), "five\n");
}

#[test]
fn global_vs_local_binding() {
    assert_eq!(
        eval("(defvar g 10) (defun f (g) (setq g (plus g 1)) g) (print (f 1)) (print g)"),
        "2\n10\n",
        "parameters shadow globals; setq hits the local"
    );
}

#[test]
fn argument_evaluation_order() {
    assert_eq!(
        eval(
            "(defvar trace nil)\n(defun note (x) (setq trace (cons x trace)) x)\n\
             (defun f (a b c) (list a b c))\n(print (f (note 1) (note 2) (note 3)))\n(print trace)"
        ),
        "(1 2 3)\n(3 2 1)\n",
        "left-to-right evaluation"
    );
    // A later argument's side effect must not corrupt an earlier one.
    assert_eq!(
        eval("(defvar x 1) (defun two (a b) (list a b)) (print (two x (setq x 99)))"),
        "(1 99)\n"
    );
}

#[test]
fn comparisons_as_plain_values() {
    // boolean results flow through data structures
    assert_eq!(
        eval("(print (list (lessp 1 2) (greaterp 1 2)))"),
        "(t nil)\n"
    );
    assert_eq!(eval("(print (cons (eq 'a 'a) (eq 'a 'b)))"), "(t)\n");
}

#[test]
fn all_schemes_print_identically() {
    let src = r#"
        (defun dup (l) (if (pairp l) (cons (car l) (cons (car l) (dup (cdr l)))) nil))
        (print (dup '(a 1 (b))))
    "#;
    for scheme in tagword::ALL_SCHEMES {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            let got = eval_with(src, Options::new(scheme, checking));
            assert_eq!(got, "(a a 1 1 (b) (b))\n", "{scheme}/{checking:?}");
        }
    }
}

#[test]
fn runaway_recursion_stops_cleanly() {
    let src = "(defun spin (n) (spin (add1 n))) (spin 0)";
    let opts = Options {
        stack_bytes: 16 << 10,
        ..Options::new(TagScheme::HighTag5, CheckingMode::None)
    };
    let c = compile(src, &opts).unwrap();
    let o = run(&c, 100_000_000).unwrap();
    assert_eq!(o.halt_code, lisp::exit_code::ERR_STACK);
}
