//! Golden-sequence tests: the emitted tag-handling code must be exactly the
//! instruction sequences the paper costs out. Rather than matching opcodes
//! textually (brittle), each test counts the *annotated* instructions inside a
//! known function body — no-ops excluded, so the counts are the paper's ideal
//! cycle figures.

use lisp::{compile, CheckingMode, Options};
use mipsx::{CheckCat, HwConfig, Insn, InsnClass, TagOpKind};
use tagword::TagScheme;

/// Fast-path instructions of `fn:NAME`, with their annotations. The body is
/// truncated at the epilogue's return so the out-of-line slow-path blocks
/// (reached only on dispatch/overflow) are not counted — the paper's cycle
/// figures are fast-path figures.
fn body_of(src: &str, name: &str, opts: &Options) -> Vec<(Insn, mipsx::Annot)> {
    let c = compile(src, opts).expect("compiles");
    let p = &c.program;
    let start = p.symbols[&format!("fn:{name}")];
    let ret = (start..p.insns.len())
        .find(|&i| matches!(p.insns[i], Insn::Jr(_)))
        .expect("function has an epilogue return");
    // Include the return's delay slot: the scheduler may park body work there.
    let end = (ret + 2).min(p.insns.len());
    (start..end).map(|i| (p.insns[i], p.annots[i])).collect()
}

fn count_checking(body: &[(Insn, mipsx::Annot)], cat: CheckCat) -> usize {
    body.iter()
        .filter(|(i, a)| *i != Insn::Nop && a.cat == cat && a.prov == mipsx::Provenance::Checking)
        .count()
}

const ADD_FN: &str = "(defun f (a b) (plus a b)) (f 1 2)";

#[test]
fn checked_add_is_ten_cycles_under_high5() {
    // Paper §4.2: "a generic integer add takes 10 cycles: 9 cycles for type and
    // overflow checking, and 1 for adding".
    let body = body_of(
        ADD_FN,
        "f",
        &Options::new(TagScheme::HighTag5, CheckingMode::Full),
    );
    assert_eq!(
        count_checking(&body, CheckCat::Arith),
        9,
        "9 checking instructions"
    );
    let adds = body
        .iter()
        .filter(|(i, a)| matches!(i, Insn::Add(..)) && a.tag_op.is_none())
        .count();
    assert_eq!(adds, 1, "one real add");
}

#[test]
fn checked_add_is_four_cycles_under_high6() {
    // Paper §4.2: the arithmetic-safe encoding folds all checking into one
    // integer test on the result: add + 3-cycle test.
    let body = body_of(
        ADD_FN,
        "f",
        &Options::new(TagScheme::HighTag6, CheckingMode::Full),
    );
    assert_eq!(
        count_checking(&body, CheckCat::Arith),
        3,
        "single 3-cycle test"
    );
}

#[test]
fn checked_add_is_one_instruction_with_trap_hardware() {
    // Paper §6.2.2: test the operands while executing the operation.
    let opts = Options {
        hw: HwConfig::with_generic_arith(),
        ..Options::new(TagScheme::HighTag5, CheckingMode::Full)
    };
    let body = body_of(ADD_FN, "f", &opts);
    assert_eq!(
        count_checking(&body, CheckCat::Arith),
        0,
        "no inline checking"
    );
    let addg = body
        .iter()
        .filter(|(i, _)| matches!(i, Insn::AddG { .. }))
        .count();
    assert_eq!(addg, 1);
}

#[test]
fn unchecked_add_is_one_instruction() {
    let body = body_of(
        ADD_FN,
        "f",
        &Options::new(TagScheme::HighTag5, CheckingMode::None),
    );
    assert_eq!(count_checking(&body, CheckCat::Arith), 0);
    let adds = body
        .iter()
        .filter(|(i, _)| matches!(i, Insn::Add(..)))
        .count();
    assert_eq!(
        adds, 1,
        "the Lisp integer IS its machine representation (§2.1)"
    );
}

const CAR_FN: &str = "(defun f (p) (car p)) (f '(1))";

#[test]
fn car_sequences_match_the_paper() {
    // Plain high tags, no checking: mask (1 cycle) + load.
    let body = body_of(
        CAR_FN,
        "f",
        &Options::new(TagScheme::HighTag5, CheckingMode::None),
    );
    let masks = body
        .iter()
        .filter(|(_, a)| a.tag_op == Some(TagOpKind::Remove))
        .count();
    assert_eq!(masks, 1, "one masking and (§3.2)");

    // Low tags: no masking at all (§5.2) — the displacement folds the tag.
    let body = body_of(
        CAR_FN,
        "f",
        &Options::new(TagScheme::LowTag2, CheckingMode::None),
    );
    let masks = body
        .iter()
        .filter(|(_, a)| a.tag_op == Some(TagOpKind::Remove))
        .count();
    assert_eq!(masks, 0, "no tag removal under low tags");

    // Full checking, plain hardware: extract + compare-and-branch = 2 checking
    // instructions (§3.4: "the cost of extracting the tag, one cycle for a
    // comparison"), plus the branch's delay slots at run time.
    let body = body_of(
        CAR_FN,
        "f",
        &Options::new(TagScheme::HighTag5, CheckingMode::Full),
    );
    assert_eq!(count_checking(&body, CheckCat::List), 2);

    // Tag-branch hardware (§6.1): the extraction disappears — 1 instruction.
    let opts = Options {
        hw: HwConfig::with_tag_branch(),
        ..Options::new(TagScheme::HighTag5, CheckingMode::Full)
    };
    let body = body_of(CAR_FN, "f", &opts);
    assert_eq!(count_checking(&body, CheckCat::List), 1);

    // Parallel-check hardware (§6.2.1): the load itself checks — zero separate
    // checking instructions AND zero removal.
    let opts = Options {
        hw: HwConfig::with_parallel_check(mipsx::ParallelCheck::Lists),
        ..Options::new(TagScheme::HighTag5, CheckingMode::Full)
    };
    let body = body_of(CAR_FN, "f", &opts);
    assert_eq!(count_checking(&body, CheckCat::List), 0);
    assert_eq!(
        body.iter()
            .filter(|(_, a)| a.tag_op == Some(TagOpKind::Remove))
            .count(),
        0
    );
    assert_eq!(
        body.iter()
            .filter(|(i, _)| matches!(i, Insn::LdChk { .. }))
            .count(),
        1
    );
}

const CONS_FN: &str = "(defun f (a b) (cons a b)) (f 1 2)";

#[test]
fn insertion_costs_match_the_paper() {
    // §3.1: two cycles under high tags (build shifted tag + or)...
    let body = body_of(
        CONS_FN,
        "f",
        &Options::new(TagScheme::HighTag5, CheckingMode::None),
    );
    let ins = body
        .iter()
        .filter(|(_, a)| a.tag_op == Some(TagOpKind::Insert))
        .count();
    assert_eq!(ins, 2);
    // ...one with a preshifted tag register...
    let opts = Options {
        preshifted_pair_tag: true,
        ..Options::new(TagScheme::HighTag5, CheckingMode::None)
    };
    let body = body_of(CONS_FN, "f", &opts);
    let ins = body
        .iter()
        .filter(|(_, a)| a.tag_op == Some(TagOpKind::Insert))
        .count();
    assert_eq!(ins, 1);
    // ...and one under low tags (or-immediate).
    let body = body_of(
        CONS_FN,
        "f",
        &Options::new(TagScheme::LowTag3, CheckingMode::None),
    );
    let ins = body
        .iter()
        .filter(|(_, a)| a.tag_op == Some(TagOpKind::Insert))
        .count();
    assert_eq!(ins, 1);
}

#[test]
fn int_test_methods_differ_as_described() {
    // §4.1: method 2 = 3 instructions; method 1 = 1 extract + 2 branches, of
    // which a positive operand executes only the first.
    let src = "(defun f (a) (intp a)) (f 1)";
    let m2 = body_of(
        src,
        "f",
        &Options::new(TagScheme::HighTag5, CheckingMode::None),
    );
    let m2n: usize = m2
        .iter()
        .filter(|(i, a)| *i != Insn::Nop && a.tag_op.is_some())
        .count();
    let opts = Options {
        int_test_method: lisp::IntTestMethod::TagCompare,
        ..Options::new(TagScheme::HighTag5, CheckingMode::None)
    };
    let m1 = body_of(src, "f", &opts);
    let m1n: usize = m1
        .iter()
        .filter(|(i, a)| *i != Insn::Nop && a.tag_op.is_some())
        .count();
    assert_eq!(m2n, 3, "sign-extend: sll+sra+branch");
    assert_eq!(
        m1n, 3,
        "tag-compare: srl+branch+branch (data-dependent path)"
    );
    // Method 1 uses an extraction plus two branches; method 2 has one branch.
    let branches = |body: &[(Insn, mipsx::Annot)]| {
        body.iter()
            .filter(|(i, a)| InsnClass::of(*i) == InsnClass::Branch && a.tag_op.is_some())
            .count()
    };
    assert_eq!(branches(&m2), 1);
    assert_eq!(branches(&m1), 2);
}

#[test]
fn annotated_listing_shows_tag_ops() {
    let c = compile(
        CAR_FN,
        &Options::new(TagScheme::HighTag5, CheckingMode::Full),
    )
    .unwrap();
    let l = c.program.listing_annotated();
    assert!(l.contains("Check/List"));
    assert!(l.contains("Remove"));
    assert!(l.contains("fn:f:"));
}
