//! A PSL-like Lisp system targeting the [`mipsx`] simulator.
//!
//! This crate is the software half of the reproduction: a small, efficient Lisp
//! dialect in the spirit of Portable Standard Lisp, compiled to MIPS-X-like machine
//! code. Everything the paper varies is a compile-time parameter here:
//!
//! - the **tag scheme** ([`tagword::TagScheme`]): where tags live in the word and
//!   how integers are encoded;
//! - the **checking mode** ([`CheckingMode`]): no run-time checking vs. full
//!   run-time checking on list, vector and arithmetic operations (the two extremes
//!   the paper measures);
//! - the **hardware support** ([`mipsx::HwConfig`]): tag-ignoring memory access,
//!   tag branches, parallel checked loads/stores, trap-based generic arithmetic.
//!
//! The code generator emits exactly the instruction sequences the paper costs out
//! (two-cycle tag insertion, one-cycle masking, one-cycle extraction, three-cycle
//! high-tag integer tests, ten-cycle integer-biased generic adds), and annotates
//! every instruction with the tag operation it implements so the simulator can
//! attribute cycles the way the paper's figures do.
//!
//! # Example
//!
//! ```
//! use lisp::{compile, run, CheckingMode, Options};
//!
//! let opts = Options::default();
//! let compiled = compile("(defun main () (plus 40 2))", &opts).unwrap();
//! let outcome = run(&compiled, 1_000_000).unwrap();
//! assert_eq!(outcome.halt_code, 0); // clean exit
//! # let _ = CheckingMode::Full;
//! ```
//!
//! The result of the program's `main` is printed via `prin1` only if the program
//! does so itself; the halt code is 0 on success.

#![deny(missing_docs)]

pub mod ast;
mod codegen;
mod compile;
mod error;
pub mod eval;
mod front;
mod layout;
mod prelude;
mod runtime;
mod sexp;
mod tagops;

pub use compile::{
    compile, run, run_observed, run_observed_with, run_with, CompileStats, CompiledProgram, Options,
};
pub use error::CompileError;
pub use front::{lower_sources, CheckingMode};
pub use mipsx::{Backend, Executor, Outcome, SimError};
pub use prelude::PRELUDE;
pub use runtime::exit_code;
pub use sexp::{parse_all, parse_one, Sexp};
pub use tagops::IntTestMethod;
