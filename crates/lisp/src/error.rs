//! Compilation errors.

use std::fmt;

/// Errors produced while reading or compiling a Lisp program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Reader (parse) error.
    Read {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A malformed special form or top-level item.
    Form {
        /// What went wrong, with the offending form rendered.
        message: String,
    },
    /// Reference to an unknown variable.
    UnknownVariable {
        /// The variable name.
        name: String,
    },
    /// Call to an unknown function.
    UnknownFunction {
        /// The function name.
        name: String,
    },
    /// A function was called with the wrong number of arguments.
    Arity {
        /// The function name.
        name: String,
        /// Number the definition expects.
        expected: usize,
        /// Number supplied at the call site.
        got: usize,
    },
    /// Too many parameters (the calling convention passes six in registers).
    TooManyParams {
        /// The function name.
        name: String,
    },
    /// A literal doesn't fit the chosen tag scheme (e.g. a fixnum out of range).
    Literal {
        /// What went wrong.
        message: String,
    },
    /// The assembler rejected the generated code (an internal bug).
    Asm(String),
    /// The generated code failed static verification (an internal bug).
    Verify(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Read { line, message } => {
                write!(f, "read error (line {line}): {message}")
            }
            CompileError::Form { message } => write!(f, "bad form: {message}"),
            CompileError::UnknownVariable { name } => write!(f, "unknown variable: {name}"),
            CompileError::UnknownFunction { name } => write!(f, "unknown function: {name}"),
            CompileError::Arity {
                name,
                expected,
                got,
            } => {
                write!(f, "{name} expects {expected} argument(s), got {got}")
            }
            CompileError::TooManyParams { name } => {
                write!(f, "{name}: more than 6 parameters not supported")
            }
            CompileError::Literal { message } => write!(f, "bad literal: {message}"),
            CompileError::Asm(m) => write!(f, "assembly failed: {m}"),
            CompileError::Verify(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subject() {
        let e = CompileError::Arity {
            name: "cons".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("cons"));
        let e = CompileError::UnknownVariable {
            name: "zork".into(),
        };
        assert!(e.to_string().contains("zork"));
    }
}
