//! Top-level compilation pipeline and execution helpers.

use mipsx::sched::{schedule_and_attribute, ScheduleReport};
use mipsx::{Asm, Backend, Executor, HwConfig, Outcome, Program, SimError};
use tagword::TagScheme;

use crate::codegen::Codegen;
use crate::error::CompileError;
use crate::front::{lower_sources, CheckingMode};
use crate::layout::{Layout, SYM_FNCODE};
use crate::prelude::PRELUDE;
use crate::runtime::{emit_runtime, RtLabels};
use crate::tagops::{IntTestMethod, TagOps};

/// Compilation options: everything the paper varies, plus sizing.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Tag-implementation scheme.
    pub scheme: TagScheme,
    /// Hardware support the generated code may assume.
    pub hw: HwConfig,
    /// Run-time checking mode.
    pub checking: CheckingMode,
    /// §3.1 ablation: keep a preshifted pair tag in a register.
    pub preshifted_pair_tag: bool,
    /// §4.1: which integer test high-tag schemes emit.
    pub int_test_method: IntTestMethod,
    /// Bytes per GC semispace.
    pub heap_semi_bytes: u32,
    /// Bytes of Lisp stack.
    pub stack_bytes: u32,
    /// Link the system library (prelude) in. On by default; only the smallest
    /// unit tests turn it off.
    pub include_prelude: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scheme: TagScheme::HighTag5,
            hw: HwConfig::plain(),
            checking: CheckingMode::None,
            preshifted_pair_tag: false,
            int_test_method: IntTestMethod::default(),
            heap_semi_bytes: 768 << 10,
            stack_bytes: 256 << 10,
            include_prelude: true,
        }
    }
}

impl Options {
    /// Convenience: default options with the given scheme and checking mode.
    pub fn new(scheme: TagScheme, checking: CheckingMode) -> Options {
        Options {
            scheme,
            checking,
            ..Options::default()
        }
    }
}

/// Static program statistics (the paper's Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileStats {
    /// Number of procedures compiled (user program + linked system modules).
    pub procedures: usize,
    /// Source lines without comments/blanks.
    pub source_lines: usize,
    /// Words of object code.
    pub object_words: usize,
}

/// A compiled, verified, ready-to-run program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The executable image.
    pub program: Program,
    /// Simulated memory size it needs.
    pub mem_bytes: usize,
    /// Hardware configuration it was compiled for.
    pub hw: HwConfig,
    /// Table 3 statistics.
    pub stats: CompileStats,
    /// What the delay-slot scheduler achieved.
    pub schedule: ScheduleReport,
}

/// Compile `source` under `opts`.
///
/// # Errors
///
/// Any [`CompileError`]: reader errors, unknown names, arity mismatches, literals
/// that don't fit the scheme, or (indicating a code-generator bug) assembly and
/// verification failures.
pub fn compile(source: &str, opts: &Options) -> Result<CompiledProgram, CompileError> {
    let sources: Vec<&str> = if opts.include_prelude {
        vec![PRELUDE, source]
    } else {
        vec![source]
    };
    let unit = lower_sources(&sources)?;
    let layout = Layout::build(&unit, opts.scheme, opts.heap_semi_bytes, opts.stack_bytes)?;

    let mut asm = Asm::new();
    let rt = RtLabels::create(&mut asm);
    let fn_labels: Vec<_> = unit.fns.iter().map(|_| asm.new_label()).collect();
    let t = TagOps {
        scheme: opts.scheme,
        hw: opts.hw,
        checking: opts.checking,
        preshifted_pair_tag: opts.preshifted_pair_tag,
        int_test_method: opts.int_test_method,
    };
    let cg = Codegen {
        unit: &unit,
        layout: &layout,
        t,
        rt,
        fn_labels,
    };

    let entry = cg.emit_main(&mut asm)?;
    asm.set_entry(entry);
    for (f, label) in unit.fns.iter().zip(cg.fn_labels.iter()) {
        cg.emit_fn(&mut asm, f, *label)?;
    }
    emit_runtime(&mut asm, &t, &layout, &rt);

    for &(a, w) in &layout.data {
        asm.data(a, w);
    }

    let schedule = schedule_and_attribute(&mut asm);
    let mut program = asm.finish().map_err(|e| CompileError::Asm(e.to_string()))?;

    // Patch each symbol's function cell with the resolved code index (funcall
    // dispatches through these).
    for f in &unit.fns {
        let idx = *program
            .symbols
            .get(&format!("fn:{}", f.name))
            .expect("every function label is named");
        let sym = &layout.symbols[layout.sym_ids[&f.name]];
        program
            .data
            .push(((sym.addr as i32 + SYM_FNCODE) as u32, idx as u32));
    }

    mipsx::verify::verify(&program).map_err(|e| CompileError::Verify(e.to_string()))?;

    let stats = CompileStats {
        procedures: unit.fns.len(),
        source_lines: unit.source_lines,
        object_words: program.insns.len(),
    };
    Ok(CompiledProgram {
        program,
        mem_bytes: layout.mem_bytes,
        hw: opts.hw,
        stats,
        schedule,
    })
}

/// Run a compiled program to completion under its compiled-for hardware, on
/// the default [`Backend`].
///
/// # Errors
///
/// [`SimError`] on a runaway program (`OutOfFuel`) or a code-generation bug.
pub fn run(c: &CompiledProgram, max_cycles: u64) -> Result<Outcome, SimError> {
    run_with(c, Backend::default(), max_cycles)
}

/// Run a compiled program on an explicit execution backend. All backends
/// produce identical [`Outcome`]s (see [`mipsx::exec`]); the choice only
/// affects wall-clock speed.
///
/// # Errors
///
/// See [`run`]; additionally [`SimError::MissingHardware`] at predecode time
/// if the code uses a hardware feature `c.hw` lacks (a compiler bug — the
/// program is compiled for that configuration).
pub fn run_with(
    c: &CompiledProgram,
    backend: Backend,
    max_cycles: u64,
) -> Result<Outcome, SimError> {
    backend
        .executor(&c.program, c.hw, c.mem_bytes)?
        .run(max_cycles)
}

/// [`run`], reporting every retired instruction to `obs` (see
/// [`mipsx::trace`]). Used by the conformance harness to compare the pipelined
/// simulator against the reference executor.
///
/// # Errors
///
/// See [`run`]; additionally [`SimError::Stopped`] if the observer breaks.
pub fn run_observed<O: mipsx::trace::Observer>(
    c: &CompiledProgram,
    max_cycles: u64,
    obs: &mut O,
) -> Result<Outcome, SimError> {
    run_observed_with(c, Backend::default(), max_cycles, obs)
}

/// [`run_observed`] on an explicit execution backend: the backend-equivalence
/// suite compares the retirement streams this produces across backends.
///
/// # Errors
///
/// See [`run_with`] and [`run_observed`].
pub fn run_observed_with<O: mipsx::trace::Observer>(
    c: &CompiledProgram,
    backend: Backend,
    max_cycles: u64,
    obs: &mut O,
) -> Result<Outcome, SimError> {
    backend
        .executor(&c.program, c.hw, c.mem_bytes)?
        .run_observed(max_cycles, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::exit_code;
    use mipsx::ParallelCheck;
    use tagword::ALL_SCHEMES;

    const FUEL: u64 = 50_000_000;

    fn run_src(src: &str, opts: &Options) -> Outcome {
        let c = compile(src, opts).expect("compiles");
        run(&c, FUEL).expect("runs")
    }

    /// Every (scheme, checking, hardware) combination we exercise in tests.
    fn all_configs() -> Vec<Options> {
        let mut v = Vec::new();
        for scheme in ALL_SCHEMES {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                v.push(Options::new(scheme, checking));
                v.push(Options {
                    hw: HwConfig::with_tag_branch(),
                    ..Options::new(scheme, checking)
                });
                v.push(Options {
                    hw: HwConfig::maximal(scheme.tag_bits()),
                    ..Options::new(scheme, checking)
                });
            }
        }
        v
    }

    #[test]
    fn arithmetic_prints() {
        for opts in all_configs() {
            let o = run_src("(print (plus 40 2))", &opts);
            assert_eq!(o.halt_code, exit_code::OK, "{opts:?}");
            assert_eq!(o.output, "42\n", "{opts:?}");
        }
    }

    #[test]
    fn negative_arithmetic() {
        for opts in all_configs() {
            let o = run_src("(print (difference 3 10)) (print (times -4 6)) (print (quotient -12 4)) (print (remainder 7 3))", &opts);
            assert_eq!(o.output, "-7\n-24\n-3\n1\n", "{opts:?}");
        }
    }

    #[test]
    fn list_structure_and_printing() {
        for opts in all_configs() {
            let o = run_src("(print (cons 1 (cons 2 nil))) (print '(a (b) . c))", &opts);
            assert_eq!(o.output, "(1 2)\n(a (b) . c)\n", "{opts:?}");
        }
    }

    #[test]
    fn defun_recursion_fib() {
        let src = "(defun fib (n) (if (lessp n 2) n (plus (fib (sub1 n)) (fib (difference n 2))))) (print (fib 10))";
        for opts in all_configs() {
            let o = run_src(src, &opts);
            assert_eq!(o.output, "55\n", "{opts:?}");
        }
    }

    #[test]
    fn let_setq_while() {
        let src = "(defun sum-to (n) (let ((s 0) (i 1)) (while (leq i n) (setq s (plus s i)) (setq i (add1 i))) s)) (print (sum-to 100))";
        for opts in all_configs() {
            assert_eq!(run_src(src, &opts).output, "5050\n", "{opts:?}");
        }
    }

    #[test]
    fn prelude_functions() {
        let src = r#"
            (print (append '(1 2) '(3 4)))
            (print (reverse '(a b c)))
            (print (length '(x y z)))
            (print (assq 'b '((a . 1) (b . 2))))
            (print (member '(1) '(0 (1) 2)))
            (print (equal '(a (b c)) '(a (b c))))
        "#;
        for opts in all_configs() {
            let o = run_src(src, &opts);
            assert_eq!(
                o.output, "(1 2 3 4)\n(c b a)\n3\n(b . 2)\n((1) 2)\nt\n",
                "{opts:?}"
            );
        }
    }

    #[test]
    fn vectors_work() {
        let src = r#"
            (defvar v (mkvect 5))
            (putv v 0 10)
            (putv v 4 'end)
            (print (getv v 0))
            (print (getv v 4))
            (print (upbv v))
            (print v)
        "#;
        for opts in all_configs() {
            let o = run_src(src, &opts);
            assert_eq!(o.output, "10\nend\n5\n[10 nil nil nil end]\n", "{opts:?}");
        }
    }

    #[test]
    fn property_lists() {
        let src = r#"
            (put 'apple 'color 'red)
            (put 'apple 'size 3)
            (put 'apple 'color 'green)
            (print (get 'apple 'color))
            (print (get 'apple 'size))
            (print (get 'apple 'taste))
        "#;
        for opts in all_configs() {
            assert_eq!(run_src(src, &opts).output, "green\n3\nnil\n", "{opts:?}");
        }
    }

    #[test]
    fn funcall_through_symbols() {
        let src = r#"
            (defun double (x) (times x 2))
            (print (funcall 'double 21))
            (print (mapcar1 'double '(1 2 3)))
        "#;
        for opts in all_configs() {
            assert_eq!(run_src(src, &opts).output, "42\n(2 4 6)\n", "{opts:?}");
        }
    }

    #[test]
    fn gc_preserves_live_data() {
        // Allocate garbage in a loop with a tiny heap; keep one live structure.
        let src = r#"
            (defvar keep (list 1 2 3))
            (defun churn (n)
              (while (greaterp n 0)
                (list n n n n n n n n)
                (setq n (sub1 n))))
            (churn 3000)
            (print keep)
            (print (length keep))
        "#;
        for scheme in ALL_SCHEMES {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                let opts = Options {
                    heap_semi_bytes: 32 << 10,
                    ..Options::new(scheme, checking)
                };
                let o = run_src(src, &opts);
                assert_eq!(o.output, "(1 2 3)\n3\n", "{scheme} {checking:?}");
            }
        }
    }

    #[test]
    fn gc_moves_vectors_and_floats() {
        let src = r#"
            (defvar v (mkvect 3))
            (putv v 1 (cons 'a 'b))
            (defvar f (float 3))
            (defun churn (n)
              (while (greaterp n 0)
                (mkvect 7)
                (setq n (sub1 n))))
            (churn 2000)
            (print (getv v 1))
            (print (floatp f))
        "#;
        for scheme in ALL_SCHEMES {
            let opts = Options {
                heap_semi_bytes: 32 << 10,
                ..Options::new(scheme, CheckingMode::Full)
            };
            let o = run_src(src, &opts);
            assert_eq!(o.output, "(a . b)\nt\n", "{scheme}");
        }
    }

    #[test]
    fn reclaim_forces_collection() {
        let src = "(defvar x (list 1 2)) (reclaim) (print x)";
        for opts in all_configs() {
            assert_eq!(run_src(src, &opts).output, "(1 2)\n", "{opts:?}");
        }
    }

    #[test]
    fn float_arithmetic_type_specific() {
        let src = "(print (flessp (fplus (float 1) (float 2)) (float 4)))";
        for opts in all_configs() {
            assert_eq!(run_src(src, &opts).output, "t\n", "{opts:?}");
        }
    }

    #[test]
    fn generic_arith_falls_back_to_floats_when_checking() {
        // With full checking, plus on floats must dispatch to the float path.
        let src = "(print (floatp (plus (float 1) (float 2)))) (print (lessp (float 1) 2))";
        for scheme in ALL_SCHEMES {
            for hw in [HwConfig::plain(), HwConfig::with_generic_arith()] {
                let opts = Options {
                    hw,
                    ..Options::new(scheme, CheckingMode::Full)
                };
                let o = run_src(src, &opts);
                assert_eq!(
                    o.output, "t\nt\n",
                    "{scheme} generic_arith={}",
                    hw.generic_arith
                );
            }
        }
    }

    #[test]
    fn checking_catches_type_errors() {
        // car of an integer must hit the error stop (checking mode only).
        let opts = Options::new(TagScheme::HighTag5, CheckingMode::Full);
        let c = compile("(car 5)", &opts).unwrap();
        let o = run(&c, FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_CAR);

        let o = run(&compile("(getv (mkvect 2) 7)", &opts).unwrap(), FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_BOUNDS);

        let o = run(&compile("(plus 'a 1)", &opts).unwrap(), FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_ARITH);

        let o = run(&compile("(quotient 1 0)", &opts).unwrap(), FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_DIV0);

        let o = run(&compile("(funcall 'no-def 1)", &opts).unwrap(), FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_FUNCALL);
    }

    #[test]
    fn parallel_check_hardware_catches_errors_too() {
        let opts = Options {
            hw: HwConfig::with_parallel_check(ParallelCheck::All),
            ..Options::new(TagScheme::HighTag5, CheckingMode::Full)
        };
        let o = run(&compile("(car 5)", &opts).unwrap(), FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_CAR);
        assert!(
            o.stats.traps >= 1,
            "hardware detected the mismatch via a trap"
        );
    }

    #[test]
    fn checking_costs_more() {
        let src = "(defun fib (n) (if (lessp n 2) n (plus (fib (sub1 n)) (fib (difference n 2))))) (fib 12)";
        for scheme in ALL_SCHEMES {
            let none = run_src(src, &Options::new(scheme, CheckingMode::None));
            let full = run_src(src, &Options::new(scheme, CheckingMode::Full));
            assert!(
                full.stats.cycles > none.stats.cycles,
                "{scheme}: checking must cost cycles ({} vs {})",
                full.stats.cycles,
                none.stats.cycles
            );
        }
    }

    #[test]
    fn cons_overflow_detected() {
        // Exceeding the fixnum range must stop with an overflow error under
        // full checking (no bignums).
        let max = TagScheme::HighTag5.max_int();
        let src = format!("(plus {max} 1)");
        let opts = Options::new(TagScheme::HighTag5, CheckingMode::Full);
        let o = run(&compile(&src, &opts).unwrap(), FUEL).unwrap();
        assert_eq!(o.halt_code, exit_code::ERR_OVERFLOW);
    }

    #[test]
    fn stats_are_populated() {
        let c = compile("(defun f (x) x) (f 1)", &Options::default()).unwrap();
        assert!(c.stats.procedures > 20, "prelude counts");
        assert!(c.stats.object_words > 100);
        assert!(c.stats.source_lines > 50);
        assert!(c.schedule.slots_filled > 0, "the scheduler found work");
    }

    #[test]
    fn tag_cycles_are_attributed() {
        let src = "(defun f (l) (if (pairp l) (f (cdr l)) l)) (f '(1 2 3 4 5))";
        let o = run_src(src, &Options::new(TagScheme::HighTag5, CheckingMode::None));
        use mipsx::TagOpKind::*;
        assert!(o.stats.tag_op_cycles(Check) > 0, "source-level pairp tests");
        assert!(o.stats.tag_op_cycles(Remove) > 0, "cdr masks pointers");
        let full = run_src(src, &Options::new(TagScheme::HighTag5, CheckingMode::Full));
        assert!(
            full.stats.checking_cycles(mipsx::CheckCat::List) > 0,
            "cdr checks are list-category checking cycles"
        );
    }

    #[test]
    fn preshifted_pair_tag_saves_insertion_cycles() {
        let src = "(defun build (n) (if (greaterp n 0) (cons n (build (sub1 n))) nil)) (build 500)";
        let base = run_src(src, &Options::new(TagScheme::HighTag5, CheckingMode::None));
        let pre = run_src(
            src,
            &Options {
                preshifted_pair_tag: true,
                ..Options::new(TagScheme::HighTag5, CheckingMode::None)
            },
        );
        assert!(pre.stats.cycles < base.stats.cycles);
        use mipsx::TagOpKind::Insert;
        assert!(pre.stats.tag_op_cycles(Insert) < base.stats.tag_op_cycles(Insert));
    }
}
