//! Scheme- and hardware-aware emission of tag-operation instruction sequences.
//!
//! This module is the heart of the reproduction: for each tag scheme and hardware
//! configuration it emits exactly the sequences the paper costs out —
//!
//! - tag **insertion**: `shift+or` (2 cycles) under high tags, `ori` (1) under low
//!   tags, `or` with a preshifted register-resident tag (1) for the §3.1 ablation;
//! - tag **removal**: `and` with a register mask (1 cycle), or nothing at all when
//!   the tag folds into the displacement (low tags) or the memory system drops it
//!   (address-drop hardware);
//! - tag **extraction**: one `srl` (high) or `andi` (low);
//! - tag **checking**: extraction + compare-and-branch, or a single [`Insn::TagBr`]
//!   when the §6.1 hardware exists;
//! - the **integer test**: sign-extend-and-compare (3 cycles) under high tags
//!   (paper §4.1 method 2), low-bits test (2 cycles) under low tags.
//!
//! Every emitted instruction carries an [`Annot`] so the simulator can attribute
//! its cycles as the paper's figures do.

use mipsx::{
    Annot, Asm, CheckCat, Cond, HwConfig, Insn, IntTest, Label, Provenance, Reg, TagField,
    TagOpKind,
};
use tagword::{Tag, TagScheme};

use crate::front::CheckingMode;

/// How high-tag schemes test for an integer (paper §4.1). Low-tag schemes always
/// use their single two-bit test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntTestMethod {
    /// §4.1 method 2 (the paper's measurement default): sign-extend the data
    /// field and compare with the original — always 3 cycles.
    #[default]
    SignExtend,
    /// §4.1 method 1: extract the tag, compare with the positive-integer tag,
    /// then with the negative-integer tag — 2 cycles for positive numbers,
    /// 3 for negative ones.
    TagCompare,
}

/// Emission context: the knobs that decide which sequence each tag operation gets.
#[derive(Debug, Clone, Copy)]
pub struct TagOps {
    /// The tag scheme.
    pub scheme: TagScheme,
    /// Hardware support present.
    pub hw: HwConfig,
    /// Checking mode (drives which checks exist at all).
    pub checking: CheckingMode,
    /// §3.1 ablation: keep a preshifted pair tag in [`Reg::Pt`].
    pub preshifted_pair_tag: bool,
    /// §4.1: which integer test high-tag schemes emit.
    pub int_test_method: IntTestMethod,
}

impl TagOps {
    /// Where the tag field lives, for [`Insn::TagBr`] and checked memory ops.
    pub fn field(&self) -> TagField {
        let bits = self.scheme.tag_bits();
        if self.scheme.is_high() {
            TagField {
                shift: (32 - bits) as u8,
                mask: (1 << bits) - 1,
            }
        } else {
            TagField {
                shift: 0,
                mask: (1 << bits) - 1,
            }
        }
    }

    /// The tag field restricted to what a *check* needs: under `LowTag3`, integers
    /// and the escape are identified by the low two bits only, so pair/symbol/
    /// vector/float checks use all three bits while int checks use two.
    pub fn int_field(&self) -> TagField {
        if self.scheme.is_high() {
            self.field()
        } else {
            TagField {
                shift: 0,
                mask: 0b11,
            }
        }
    }

    /// The hardware integer test for generic-arithmetic instructions.
    pub fn int_test(&self) -> IntTest {
        if self.scheme.is_high() {
            IntTest::SignExt((32 - self.scheme.tag_bits()) as u8)
        } else {
            IntTest::LowBitsZero(2)
        }
    }

    /// The raw tag value a check compares against for `tag` (exact or escape).
    pub fn check_value(&self, tag: Tag) -> u32 {
        self.scheme
            .raw_tag(tag)
            .or_else(|| self.scheme.escape_tag())
            .expect("pointer tags always have a raw or escape encoding")
    }

    /// Whether `tag` needs a header load to be fully checked (low-tag escape).
    pub fn needs_header_check(&self, tag: Tag) -> bool {
        !self.scheme.has_exact_tag(tag)
    }

    /// Whether explicit masking is unnecessary before using a tagged pointer as an
    /// address (paper §5): low-tag schemes on word-aligned memory, or high-tag
    /// schemes with address-drop hardware.
    #[allow(dead_code)] // exposed for analysis tooling and asserted in tests
    pub fn avoid_masking(&self) -> bool {
        self.scheme.free_address_masking()
            || self.hw.drop_high_address_bits >= self.scheme.tag_bits()
    }

    /// The pointer mask kept in [`Reg::Mask`].
    pub fn pointer_mask(&self) -> u32 {
        match self.scheme {
            TagScheme::HighTag5 => 0x07FF_FFFF,
            TagScheme::HighTag6 => 0x03FF_FFFF,
            TagScheme::LowTag2 => !0b11,
            TagScheme::LowTag3 => !0b111,
        }
    }

    /// The header type-code for the full check of an escape-encoded type.
    pub fn header_code(&self, tag: Tag) -> u32 {
        match tag {
            Tag::Vector => crate::layout::VEC_CODE,
            Tag::Float => crate::layout::FLOAT_CODE,
            _ => unreachable!("only vectors and floats are heap-boxed with headers"),
        }
    }

    /// Annotation helper: a checking-added op when `self.checking` is
    /// [`CheckingMode::Full`], otherwise a base op.
    #[allow(dead_code)] // convenience for downstream emitters
    pub fn check_annot(&self, op: TagOpKind, cat: CheckCat) -> Annot {
        Annot {
            tag_op: Some(op),
            cat,
            prov: Provenance::Checking,
        }
    }

    // --- address formation ------------------------------------------------------

    /// Prepare the tagged pointer in `src` for use as an address for an object of
    /// type `tag`. Returns the register to use as base and the displacement
    /// correction to add; emits the masking `and` (annotated as removal, with
    /// `annot`'s provenance) only when the configuration requires it.
    pub fn address(
        &self,
        asm: &mut Asm,
        src: Reg,
        scratch: Reg,
        tag: Tag,
        annot: Annot,
    ) -> (Reg, i32) {
        if self.scheme.free_address_masking() {
            let fold = self
                .scheme
                .fold_displacement(tag)
                .expect("low-tag pointer types always fold");
            (src, fold)
        } else if self.hw.drop_high_address_bits >= self.scheme.tag_bits() {
            // The memory system blanks the tag bits; use the tagged word directly.
            (src, 0)
        } else {
            asm.emit_annot(Insn::And(scratch, src, Reg::Mask), annot);
            (scratch, 0)
        }
    }

    /// Emit the full untag (mask) of `src` into `dst`, for non-address uses.
    #[allow(dead_code)] // convenience for downstream emitters
    pub fn untag(&self, asm: &mut Asm, dst: Reg, src: Reg, annot: Annot) {
        match self.scheme {
            TagScheme::HighTag5 | TagScheme::HighTag6 => {
                asm.emit_annot(Insn::And(dst, src, Reg::Mask), annot)
            }
            TagScheme::LowTag2 | TagScheme::LowTag3 => {
                asm.emit_annot(Insn::And(dst, src, Reg::Mask), annot)
            }
        }
    }

    // --- insertion ----------------------------------------------------------------

    /// Tag the raw pointer in `ptr` with `tag`, leaving the tagged word in `dst`
    /// (may equal `ptr`). Costs 2 cycles under high tags (build the shifted tag,
    /// then `or`), 1 under low tags, 1 with the preshifted pair-tag register.
    pub fn insert(&self, asm: &mut Asm, dst: Reg, ptr: Reg, scratch: Reg, tag: Tag, annot: Annot) {
        match self.scheme {
            TagScheme::HighTag5 | TagScheme::HighTag6 => {
                let shift = 32 - self.scheme.tag_bits();
                let raw = self.check_value(tag);
                if tag == Tag::Pair && self.preshifted_pair_tag {
                    asm.emit_annot(Insn::Or(dst, ptr, Reg::Pt), annot);
                } else {
                    asm.emit_annot(Insn::Li(scratch, (raw << shift) as i32), annot);
                    asm.emit_annot(Insn::Or(dst, ptr, scratch), annot);
                }
            }
            TagScheme::LowTag2 | TagScheme::LowTag3 => {
                let raw = self.check_value(tag);
                asm.emit_annot(Insn::Ori(dst, ptr, raw), annot);
            }
        }
    }

    // --- checking -------------------------------------------------------------------

    /// Emit a type check: fall through when `val` has type `tag`, branch to
    /// `error` otherwise. `scratch` must differ from `val`.
    #[allow(clippy::too_many_arguments)] // mirrors the machine operation's operands
    pub fn check_exact(
        &self,
        asm: &mut Asm,
        val: Reg,
        scratch: Reg,
        tag: Tag,
        error: Label,
        cat: CheckCat,
        prov: Provenance,
    ) {
        let extract = Annot {
            tag_op: Some(TagOpKind::Extract),
            cat,
            prov,
        };
        let check = Annot {
            tag_op: Some(TagOpKind::Check),
            cat,
            prov,
        };
        let field = self.field();
        let raw = self.check_value(tag);
        if self.hw.tag_branch {
            asm.with_annot(check, |a| {
                a.emit(Insn::TagBr {
                    rs: val,
                    field,
                    value: raw,
                    neq: true,
                    target: label_id(error),
                    squash: false,
                });
                a.nop();
                a.nop();
            });
        } else {
            asm.with_annot(extract, |a| {
                if self.scheme.is_high() {
                    a.emit(Insn::Srl(scratch, val, field.shift));
                } else {
                    a.emit(Insn::Andi(scratch, val, field.mask));
                }
            });
            asm.with_annot(check, |a| a.bri(Cond::Ne, scratch, raw as i32, error));
        }
        if self.needs_header_check(tag) {
            // Escape-encoded type: confirm via the object header.
            let (base, fold) = self.address(asm, val, scratch, tag, extract);
            asm.with_annot(check, |a| {
                a.ld(scratch, base, fold);
                a.emit(Insn::Andi(
                    scratch,
                    scratch,
                    (1 << crate::layout::HDR_LEN_SHIFT) - 1,
                ));
                a.bri(Cond::Ne, scratch, self.header_code(tag) as i32, error);
            });
        }
    }

    /// Emit an integer check: fall through when `val` is a fixnum, branch to
    /// `error` otherwise. 3 cycles under high tags with §4.1 method 2 (the
    /// default), 2–3 with method 1, 2 under low tags.
    pub fn check_int(
        &self,
        asm: &mut Asm,
        val: Reg,
        scratch: Reg,
        error: Label,
        cat: CheckCat,
        prov: Provenance,
    ) {
        let extract = Annot {
            tag_op: Some(TagOpKind::Extract),
            cat,
            prov,
        };
        let check = Annot {
            tag_op: Some(TagOpKind::Check),
            cat,
            prov,
        };
        if self.scheme.is_high() {
            let bits = self.scheme.tag_bits() as u8;
            if self.int_test_method == IntTestMethod::TagCompare {
                // §4.1 method 1: tag == 0 (positive) or tag == all-ones (negative).
                let neg_tag = (1u32 << bits) - 1;
                let ok = asm.new_label();
                asm.with_annot(extract, |a| a.emit(Insn::Srl(scratch, val, 32 - bits)));
                asm.with_annot(check, |a| {
                    a.bri(Cond::Eq, scratch, 0, ok);
                    a.bri(Cond::Ne, scratch, neg_tag as i32, error);
                });
                asm.bind(ok);
                return;
            }
            asm.with_annot(extract, |a| {
                a.emit(Insn::Sll(scratch, val, bits));
                a.emit(Insn::Sra(scratch, scratch, bits));
            });
            asm.with_annot(check, |a| a.br(Cond::Ne, scratch, val, error));
        } else if self.hw.tag_branch {
            asm.with_annot(check, |a| {
                a.emit(Insn::TagBr {
                    rs: val,
                    field: self.int_field(),
                    value: 0,
                    neq: true,
                    target: label_id(error),
                    squash: false,
                });
                a.nop();
                a.nop();
            });
        } else {
            asm.with_annot(extract, |a| a.emit(Insn::Andi(scratch, val, 0b11)));
            asm.with_annot(check, |a| a.bri(Cond::Ne, scratch, 0, error));
        }
    }

    /// Branch to `target` if `val` has type `tag` (`if_match`) or hasn't
    /// (`!if_match`). Used for source-level predicates in branch position.
    #[allow(clippy::too_many_arguments)]
    pub fn branch_type(
        &self,
        asm: &mut Asm,
        val: Reg,
        scratch: Reg,
        tag: Tag,
        target: Label,
        if_match: bool,
        cat: CheckCat,
        prov: Provenance,
    ) {
        let extract = Annot {
            tag_op: Some(TagOpKind::Extract),
            cat,
            prov,
        };
        let check = Annot {
            tag_op: Some(TagOpKind::Check),
            cat,
            prov,
        };
        let field = self.field();
        let raw = self.check_value(tag);
        if !self.needs_header_check(tag) {
            if self.hw.tag_branch {
                asm.with_annot(check, |a| {
                    a.emit(Insn::TagBr {
                        rs: val,
                        field,
                        value: raw,
                        neq: !if_match,
                        target: label_id(target),
                        squash: false,
                    });
                    a.nop();
                    a.nop();
                });
            } else {
                asm.with_annot(extract, |a| {
                    if self.scheme.is_high() {
                        a.emit(Insn::Srl(scratch, val, field.shift));
                    } else {
                        a.emit(Insn::Andi(scratch, val, field.mask));
                    }
                });
                let cond = if if_match { Cond::Eq } else { Cond::Ne };
                asm.with_annot(check, |a| a.bri(cond, scratch, raw as i32, target));
            }
            return;
        }
        // Escape-encoded type: tag says "escape", header says which.
        let no = asm.new_label();
        if self.hw.tag_branch {
            asm.with_annot(check, |a| {
                a.emit(Insn::TagBr {
                    rs: val,
                    field,
                    value: raw,
                    neq: true,
                    target: label_id(if if_match { no } else { target }),
                    squash: false,
                });
                a.nop();
                a.nop();
            });
        } else {
            asm.with_annot(extract, |a| {
                a.emit(Insn::Andi(scratch, val, field.mask));
            });
            asm.with_annot(check, |a| {
                a.bri(
                    Cond::Ne,
                    scratch,
                    raw as i32,
                    if if_match { no } else { target },
                )
            });
        }
        let (base, fold) = self.address(asm, val, scratch, tag, extract);
        asm.with_annot(check, |a| {
            a.ld(scratch, base, fold);
            a.emit(Insn::Andi(
                scratch,
                scratch,
                (1 << crate::layout::HDR_LEN_SHIFT) - 1,
            ));
            let cond = if if_match { Cond::Eq } else { Cond::Ne };
            a.bri(cond, scratch, self.header_code(tag) as i32, target);
        });
        asm.bind(no);
    }

    /// Branch to `target` if `val` is (`if_match`) / is not (`!if_match`) a fixnum.
    #[allow(clippy::too_many_arguments)]
    pub fn branch_int(
        &self,
        asm: &mut Asm,
        val: Reg,
        scratch: Reg,
        target: Label,
        if_match: bool,
        cat: CheckCat,
        prov: Provenance,
    ) {
        let extract = Annot {
            tag_op: Some(TagOpKind::Extract),
            cat,
            prov,
        };
        let check = Annot {
            tag_op: Some(TagOpKind::Check),
            cat,
            prov,
        };
        if self.scheme.is_high() {
            let bits = self.scheme.tag_bits() as u8;
            if self.int_test_method == IntTestMethod::TagCompare {
                let neg_tag = ((1u32 << bits) - 1) as i32;
                asm.with_annot(extract, |a| a.emit(Insn::Srl(scratch, val, 32 - bits)));
                if if_match {
                    asm.with_annot(check, |a| {
                        a.bri(Cond::Eq, scratch, 0, target);
                        a.bri(Cond::Eq, scratch, neg_tag, target);
                    });
                } else {
                    let no = asm.new_label();
                    asm.with_annot(check, |a| {
                        a.bri(Cond::Eq, scratch, 0, no);
                        a.bri(Cond::Ne, scratch, neg_tag, target);
                    });
                    asm.bind(no);
                }
                return;
            }
            asm.with_annot(extract, |a| {
                a.emit(Insn::Sll(scratch, val, bits));
                a.emit(Insn::Sra(scratch, scratch, bits));
            });
            let cond = if if_match { Cond::Eq } else { Cond::Ne };
            asm.with_annot(check, |a| a.br(cond, scratch, val, target));
        } else if self.hw.tag_branch {
            asm.with_annot(check, |a| {
                a.emit(Insn::TagBr {
                    rs: val,
                    field: self.int_field(),
                    value: 0,
                    neq: !if_match,
                    target: label_id(target),
                    squash: false,
                });
                a.nop();
                a.nop();
            });
        } else {
            asm.with_annot(extract, |a| a.emit(Insn::Andi(scratch, val, 0b11)));
            let cond = if if_match { Cond::Eq } else { Cond::Ne };
            asm.with_annot(check, |a| a.bri(cond, scratch, 0, target));
        }
    }
}

/// Recover the raw label id (the assembler's `Label` is opaque outside `mipsx`, so
/// we round-trip through a tiny helper there).
fn label_id(l: Label) -> u32 {
    l.id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mipsx::{Cpu, Executor, Outcome};

    fn ops(scheme: TagScheme, hw: HwConfig) -> TagOps {
        TagOps {
            scheme,
            hw,
            checking: CheckingMode::Full,
            preshifted_pair_tag: false,
            int_test_method: IntTestMethod::default(),
        }
    }

    fn run(mut asm: Asm, hw: HwConfig, data: &[(u32, u32)]) -> Outcome {
        mipsx::sched::schedule(&mut asm);
        let mut prog = asm.finish().unwrap();
        prog.data.extend_from_slice(data);
        mipsx::verify::verify(&prog).unwrap();
        Cpu::new(&prog, hw, 1 << 20).run(100_000).unwrap()
    }

    fn setup(asm: &mut Asm, t: &TagOps) {
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::Mask, t.pointer_mask() as i32);
    }

    #[test]
    fn insert_costs_match_paper() {
        // High tags: 2 instructions; low tags: 1.
        for (scheme, want) in [
            (TagScheme::HighTag5, 2),
            (TagScheme::HighTag6, 2),
            (TagScheme::LowTag2, 1),
            (TagScheme::LowTag3, 1),
        ] {
            let t = ops(scheme, HwConfig::plain());
            let mut asm = Asm::new();
            setup(&mut asm, &t);
            let before = asm.len();
            t.insert(&mut asm, Reg::A0, Reg::A1, Reg::X1, Tag::Pair, Annot::NONE);
            assert_eq!(asm.len() - before, want, "{scheme}");
        }
        // Preshifted pair tag: 1 instruction under high tags (§3.1).
        let t = TagOps {
            preshifted_pair_tag: true,
            ..ops(TagScheme::HighTag5, HwConfig::plain())
        };
        let mut asm = Asm::new();
        setup(&mut asm, &t);
        let before = asm.len();
        t.insert(&mut asm, Reg::A0, Reg::A1, Reg::X1, Tag::Pair, Annot::NONE);
        assert_eq!(asm.len() - before, 1);
    }

    #[test]
    fn insert_round_trips_through_simulator() {
        for scheme in tagword::ALL_SCHEMES {
            let t = ops(scheme, HwConfig::plain());
            let mut asm = Asm::new();
            setup(&mut asm, &t);
            asm.li(Reg::A1, 0x1000);
            if t.preshifted_pair_tag {
                unreachable!();
            }
            t.insert(&mut asm, Reg::A0, Reg::A1, Reg::X1, Tag::Pair, Annot::NONE);
            asm.halt(Reg::A0);
            let o = run(asm, HwConfig::plain(), &[]);
            let expect = scheme.insert(Tag::Pair, 0x1000).unwrap();
            assert_eq!(o.halt_code as u32, expect, "{scheme}");
        }
    }

    #[test]
    fn address_needs_no_mask_under_low_tags() {
        for scheme in [TagScheme::LowTag2, TagScheme::LowTag3] {
            let t = ops(scheme, HwConfig::plain());
            let mut asm = Asm::new();
            setup(&mut asm, &t);
            let before = asm.len();
            let (base, fold) = t.address(&mut asm, Reg::A0, Reg::X0, Tag::Pair, Annot::NONE);
            assert_eq!(asm.len(), before, "no instructions emitted");
            assert_eq!(base, Reg::A0);
            assert_eq!(fold, -1, "pair tag folds into the displacement");
        }
    }

    #[test]
    fn address_masks_under_plain_high_tags_only() {
        let t = ops(TagScheme::HighTag5, HwConfig::plain());
        let mut asm = Asm::new();
        setup(&mut asm, &t);
        let before = asm.len();
        let (base, _) = t.address(&mut asm, Reg::A0, Reg::X0, Tag::Pair, Annot::NONE);
        assert_eq!(asm.len() - before, 1);
        assert_eq!(base, Reg::X0);

        let t = ops(TagScheme::HighTag5, HwConfig::with_address_drop(5));
        let mut asm = Asm::new();
        setup(&mut asm, &t);
        let before = asm.len();
        let (base, _) = t.address(&mut asm, Reg::A0, Reg::X0, Tag::Pair, Annot::NONE);
        assert_eq!(asm.len(), before, "drop hardware: no mask instruction");
        assert_eq!(base, Reg::A0);
    }

    #[test]
    fn check_int_runs_correctly_everywhere() {
        for scheme in tagword::ALL_SCHEMES {
            for hw in [HwConfig::plain(), HwConfig::with_tag_branch()] {
                let t = ops(scheme, hw);
                // value that IS an int → reach halt(1)
                let mut asm = Asm::new();
                setup(&mut asm, &t);
                let err = asm.new_label();
                asm.li(Reg::A0, scheme.make_int(-3).unwrap() as i32);
                t.check_int(
                    &mut asm,
                    Reg::A0,
                    Reg::X0,
                    err,
                    CheckCat::Arith,
                    Provenance::Checking,
                );
                asm.li(Reg::A1, 1);
                asm.halt(Reg::A1);
                asm.bind(err);
                asm.li(Reg::A1, -1);
                asm.halt(Reg::A1);
                assert_eq!(run(asm, hw, &[]).halt_code, 1, "{scheme} int accepted");

                // value that is NOT an int (a pair) → reach error
                let mut asm = Asm::new();
                setup(&mut asm, &t);
                let err = asm.new_label();
                let pair = scheme.insert(Tag::Pair, 0x1000).unwrap();
                asm.li(Reg::A0, pair as i32);
                t.check_int(
                    &mut asm,
                    Reg::A0,
                    Reg::X0,
                    err,
                    CheckCat::Arith,
                    Provenance::Checking,
                );
                asm.li(Reg::A1, 1);
                asm.halt(Reg::A1);
                asm.bind(err);
                asm.li(Reg::A1, -1);
                asm.halt(Reg::A1);
                assert_eq!(run(asm, hw, &[]).halt_code, -1, "{scheme} non-int rejected");
            }
        }
    }

    #[test]
    fn check_exact_with_escape_types() {
        // A vector under LowTag2 is escape-encoded; the check must read the header.
        let scheme = TagScheme::LowTag2;
        let t = ops(scheme, HwConfig::plain());
        let vec_addr = 0x2000u32;
        let data = [(vec_addr, crate::layout::header(crate::layout::VEC_CODE, 3))];
        let w = scheme.insert(Tag::Vector, vec_addr).unwrap();

        let mut asm = Asm::new();
        setup(&mut asm, &t);
        let err = asm.new_label();
        asm.li(Reg::A0, w as i32);
        t.check_exact(
            &mut asm,
            Reg::A0,
            Reg::X0,
            Tag::Vector,
            err,
            CheckCat::Vector,
            Provenance::Checking,
        );
        asm.li(Reg::A1, 1);
        asm.halt(Reg::A1);
        asm.bind(err);
        asm.li(Reg::A1, -1);
        asm.halt(Reg::A1);
        // Scheduling pads the header-load delay.
        mipsx::sched::schedule(&mut asm);
        let mut prog = asm.finish().unwrap();
        prog.data.extend_from_slice(&data);
        mipsx::verify::verify(&prog).unwrap();
        let o = Cpu::new(&prog, HwConfig::plain(), 1 << 20).run(100_000);
        match o {
            Ok(o) => assert_eq!(o.halt_code, 1),
            Err(e) => panic!("vector check failed: {e}"),
        }
    }

    #[test]
    fn branch_type_both_polarities() {
        for scheme in tagword::ALL_SCHEMES {
            let t = ops(scheme, HwConfig::plain());
            let pair = scheme.insert(Tag::Pair, 0x1000).unwrap();
            for (if_match, expect) in [(true, 7), (false, 1)] {
                let mut asm = Asm::new();
                setup(&mut asm, &t);
                let target = asm.new_label();
                asm.li(Reg::A0, pair as i32);
                t.branch_type(
                    &mut asm,
                    Reg::A0,
                    Reg::X0,
                    Tag::Pair,
                    target,
                    if_match,
                    CheckCat::NotChecking,
                    Provenance::Base,
                );
                asm.li(Reg::A1, 1);
                asm.halt(Reg::A1); // fallthrough
                asm.bind(target);
                asm.li(Reg::A1, 7);
                asm.halt(Reg::A1); // branch taken
                assert_eq!(
                    run(asm, HwConfig::plain(), &[]).halt_code,
                    expect,
                    "{scheme} if_match={if_match}"
                );
            }
        }
    }

    #[test]
    fn tag_branch_hardware_shrinks_checks() {
        let plain = ops(TagScheme::HighTag5, HwConfig::plain());
        let hw = ops(TagScheme::HighTag5, HwConfig::with_tag_branch());
        let count = |t: &TagOps| {
            let mut asm = Asm::new();
            let e = asm.here("e");
            asm.set_entry(e);
            let err = asm.new_label();
            t.check_exact(
                &mut asm,
                Reg::A0,
                Reg::X0,
                Tag::Pair,
                err,
                CheckCat::List,
                Provenance::Checking,
            );
            asm.bind(err);
            // count non-nop instructions
            asm.len()
        };
        assert!(count(&hw) < count(&plain), "TagBr eliminates the extract");
    }
}
