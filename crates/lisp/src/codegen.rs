//! The code generator: [`Expr`] → annotated MIPS-X instructions.
//!
//! ## Conventions
//!
//! - Every expression evaluates into `A0`.
//! - Arguments are staged through the Lisp stack: complex arguments (and mutable
//!   simple ones that a later complex argument could change) are evaluated in
//!   order and pushed, then popped into their registers; immutable simple
//!   arguments are materialised directly.
//! - Frames: `[saved link << 2][param 0]…[param n][let locals…]`, addressed off
//!   `Sp` with the compile-time push depth folded into displacements.
//! - At any allocation point the only live registers are `A0`/`A1` (plus `A2` as
//!   a raw byte count); the GC scans exactly those plus the stack — see
//!   [`crate::runtime`].
//! - Scratch registers inside a primitive: `X0`, `X1`, `T8`, `T9` (never live
//!   across calls or allocation).
//!
//! ## Checking modes
//!
//! With [`CheckingMode::None`] the generator emits the bare operation (plus the
//! tag removals and insertions the representation forces). With
//! [`CheckingMode::Full`] it prepends the checks of paper §2.2: pair checks on
//! list access (category *list*), tag/index/bounds checks on vectors (*vector*),
//! and integer-biased generic arithmetic (*arith*) — 10 cycles for a checked
//! add on the plain high-tag scheme, 4 with the §4.2 arithmetic-safe encoding,
//! 1 with §6.2.2 trap hardware.

use mipsx::{
    Annot, Asm, CheckCat, Cond, FpOp, Insn, Label, ParallelCheck, Provenance, Reg, TagOpKind,
    WriteKind,
};
use tagword::{Tag, TagScheme};

use crate::ast::{Expr, FnDef, Prim, Unit};
use crate::error::CompileError;
use crate::front::CheckingMode;
use crate::layout::{Layout, HDR_LEN_SHIFT, SYM_FNCODE, SYM_PLIST, VEC_CODE};
use crate::runtime::RtLabels;
use crate::tagops::TagOps;

const BASE_REMOVE: Annot = Annot {
    tag_op: Some(TagOpKind::Remove),
    cat: CheckCat::NotChecking,
    prov: Provenance::Base,
};
const BASE_INSERT: Annot = Annot {
    tag_op: Some(TagOpKind::Insert),
    cat: CheckCat::NotChecking,
    prov: Provenance::Base,
};
const GENERIC_ARITH: Annot = Annot {
    tag_op: Some(TagOpKind::Generic),
    cat: CheckCat::Arith,
    prov: Provenance::Checking,
};

fn check_annot(op: TagOpKind, cat: CheckCat) -> Annot {
    Annot {
        tag_op: Some(op),
        cat,
        prov: Provenance::Checking,
    }
}

/// Whether the compiler can prove this expression yields a fixnum (integer
/// literals only; a real system would also use declarations and flow analysis).
fn known_int(e: &Expr) -> bool {
    matches!(e, Expr::Int(_))
}

/// A deferred out-of-line block (slow paths placed after the function body so the
/// fast path pays no jump).
struct Deferred {
    slow: Label,
    done: Label,
    body: DeferredBody,
}

enum DeferredBody {
    /// `[undo]; jal rt; [branch A0==nil → target]; j done`
    GenericCall {
        undo: Option<Insn>,
        rt: Label,
        branch_nil_to: Option<Label>,
    },
}

/// Per-function state.
struct FnCtx {
    frame_words: usize,
    push_depth: usize,
    deferred: Vec<Deferred>,
}

impl FnCtx {
    fn new(nslots: usize) -> FnCtx {
        FnCtx {
            frame_words: 1 + nslots,
            push_depth: 0,
            deferred: Vec::new(),
        }
    }

    fn slot_off(&self, slot: usize) -> i32 {
        4 * (self.push_depth + 1 + slot) as i32
    }
}

/// The code generator.
pub struct Codegen<'a> {
    /// The lowered unit.
    pub unit: &'a Unit,
    /// Memory map and static data.
    pub layout: &'a Layout,
    /// Tag-operation emitter.
    pub t: TagOps,
    /// Runtime routine labels.
    pub rt: RtLabels,
    /// Entry label per function.
    pub fn_labels: Vec<Label>,
}

impl<'a> Codegen<'a> {
    /// Integer increment representing 1 under the scheme.
    fn one(&self) -> i32 {
        if self.t.scheme.is_high() {
            1
        } else {
            4
        }
    }

    fn full(&self) -> bool {
        self.t.checking == CheckingMode::Full
    }

    fn parallel_lists(&self) -> bool {
        self.full() && self.t.hw.parallel_check != ParallelCheck::None
    }

    fn parallel_all(&self) -> bool {
        self.full() && self.t.hw.parallel_check == ParallelCheck::All
    }

    fn const_word(&self, i: usize) -> i32 {
        self.layout.const_words[i] as i32
    }

    fn make_int(&self, v: i32) -> Result<i32, CompileError> {
        self.t
            .scheme
            .make_int(v)
            .map(|w| w as i32)
            .map_err(|e| CompileError::Literal {
                message: e.to_string(),
            })
    }

    // --- stack ------------------------------------------------------------------

    fn push(&self, asm: &mut Asm, ctx: &mut FnCtx, reg: Reg) {
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, -4));
        asm.st(reg, Reg::Sp, 0);
        ctx.push_depth += 1;
    }

    fn pop(&self, asm: &mut Asm, ctx: &mut FnCtx, reg: Reg) {
        asm.ld(reg, Reg::Sp, 0);
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, 4));
        ctx.push_depth -= 1;
    }

    // --- simple values -------------------------------------------------------------

    fn eval_simple(
        &self,
        asm: &mut Asm,
        ctx: &FnCtx,
        e: &Expr,
        dst: Reg,
    ) -> Result<(), CompileError> {
        match e {
            Expr::Nil => asm.mov(dst, Reg::Nil),
            Expr::T => asm.mov(dst, Reg::TrueR),
            Expr::Int(v) => {
                let w = self.make_int(*v)?;
                asm.li(dst, w);
            }
            Expr::Const(i) => asm.li(dst, self.const_word(*i)),
            Expr::Local(s) => asm.ld(dst, Reg::Sp, ctx.slot_off(*s)),
            Expr::Global(g) => asm.ld(dst, Reg::Gp, 4 * *g as i32),
            _ => unreachable!("eval_simple on a non-simple expression"),
        }
        Ok(())
    }

    /// Evaluate `args` into `dsts` (prefix), honouring left-to-right order.
    fn eval_args(
        &self,
        asm: &mut Asm,
        ctx: &mut FnCtx,
        args: &[Expr],
        dsts: &[Reg],
    ) -> Result<(), CompileError> {
        assert!(
            args.len() <= dsts.len(),
            "too many arguments for register set"
        );
        let last_complex = args.iter().rposition(|a| !a.is_simple());
        let pushed: Vec<bool> = args
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if !a.is_simple() {
                    return true;
                }
                // Mutable simple values must be captured before a later complex
                // argument might change them.
                let mutable = matches!(a, Expr::Local(_) | Expr::Global(_));
                mutable && last_complex.map(|lc| i < lc).unwrap_or(false)
            })
            .collect();
        for (i, a) in args.iter().enumerate() {
            if pushed[i] {
                self.eval(asm, ctx, a)?;
                self.push(asm, ctx, Reg::A0);
            }
        }
        for i in (0..args.len()).rev() {
            if pushed[i] {
                self.pop(asm, ctx, dsts[i]);
            }
        }
        for (i, a) in args.iter().enumerate() {
            if !pushed[i] {
                self.eval_simple(asm, ctx, a, dsts[i])?;
            }
        }
        Ok(())
    }

    // --- expressions -----------------------------------------------------------

    /// Evaluate `e`; the result is left in `A0`.
    fn eval(&self, asm: &mut Asm, ctx: &mut FnCtx, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Nil
            | Expr::T
            | Expr::Int(_)
            | Expr::Const(_)
            | Expr::Local(_)
            | Expr::Global(_) => self.eval_simple(asm, ctx, e, Reg::A0),
            Expr::Float(bits) => {
                // Box a float literal.
                let ok = asm.new_label();
                asm.emit(Insn::Addi(Reg::X0, Reg::Hp, 8));
                asm.br(Cond::Le, Reg::X0, Reg::Hl, ok);
                asm.li(Reg::A2, 8);
                asm.jal(self.rt.gc_collect, Reg::Link);
                asm.bind(ok);
                asm.li(
                    Reg::X0,
                    crate::layout::header(crate::layout::FLOAT_CODE, 1) as i32,
                );
                asm.st(Reg::X0, Reg::Hp, 0);
                asm.li(Reg::X0, *bits as i32);
                asm.st(Reg::X0, Reg::Hp, 4);
                self.t
                    .insert(asm, Reg::A0, Reg::Hp, Reg::X1, Tag::Float, BASE_INSERT);
                asm.emit(Insn::Addi(Reg::Hp, Reg::Hp, 8));
                Ok(())
            }
            Expr::SetLocal(s, v) => {
                self.eval(asm, ctx, v)?;
                asm.st(Reg::A0, Reg::Sp, ctx.slot_off(*s));
                Ok(())
            }
            Expr::SetGlobal(g, v) => {
                self.eval(asm, ctx, v)?;
                asm.st(Reg::A0, Reg::Gp, 4 * *g as i32);
                Ok(())
            }
            Expr::If(c, t, f) => {
                let else_l = asm.new_label();
                let end = asm.new_label();
                self.branch_false(asm, ctx, c, else_l)?;
                self.eval(asm, ctx, t)?;
                asm.j(end);
                asm.bind(else_l);
                self.eval(asm, ctx, f)?;
                asm.bind(end);
                Ok(())
            }
            Expr::Progn(es) => {
                if es.is_empty() {
                    asm.mov(Reg::A0, Reg::Nil);
                    return Ok(());
                }
                for e in es {
                    self.eval(asm, ctx, e)?;
                }
                Ok(())
            }
            Expr::While(c, body) => {
                let top = asm.new_label();
                let end = asm.new_label();
                asm.bind(top);
                self.branch_false(asm, ctx, c, end)?;
                for b in body {
                    self.eval(asm, ctx, b)?;
                }
                asm.j(top);
                asm.bind(end);
                asm.mov(Reg::A0, Reg::Nil);
                Ok(())
            }
            Expr::And(es) => {
                if es.is_empty() {
                    asm.mov(Reg::A0, Reg::TrueR);
                    return Ok(());
                }
                let false_l = asm.new_label();
                let end = asm.new_label();
                for (i, e) in es.iter().enumerate() {
                    self.eval(asm, ctx, e)?;
                    if i + 1 < es.len() {
                        asm.beq(Reg::A0, Reg::Nil, false_l);
                    }
                }
                asm.j(end);
                asm.bind(false_l);
                asm.mov(Reg::A0, Reg::Nil);
                asm.bind(end);
                Ok(())
            }
            Expr::Or(es) => {
                if es.is_empty() {
                    asm.mov(Reg::A0, Reg::Nil);
                    return Ok(());
                }
                let end = asm.new_label();
                for (i, e) in es.iter().enumerate() {
                    self.eval(asm, ctx, e)?;
                    if i + 1 < es.len() {
                        asm.bne(Reg::A0, Reg::Nil, end);
                    }
                }
                asm.bind(end);
                Ok(())
            }
            Expr::Call(f, args) => {
                let dsts = &Reg::ARGS[..args.len()];
                self.eval_args(asm, ctx, args, dsts)?;
                asm.jal(self.fn_labels[*f], Reg::Link);
                Ok(())
            }
            Expr::Funcall(f, args) => {
                // Stage the function (a symbol) through T9.
                let mut all = Vec::with_capacity(args.len() + 1);
                all.push((**f).clone());
                all.extend(args.iter().cloned());
                let mut dsts = vec![Reg::T9];
                dsts.extend_from_slice(&Reg::ARGS[..args.len()]);
                self.eval_args(asm, ctx, &all, &dsts)?;
                if self.full() {
                    self.t.check_exact(
                        asm,
                        Reg::T9,
                        Reg::X0,
                        Tag::Symbol,
                        self.rt.err_funcall,
                        CheckCat::List,
                        Provenance::Checking,
                    );
                }
                let (base, fold) = self
                    .t
                    .address(asm, Reg::T9, Reg::X1, Tag::Symbol, BASE_REMOVE);
                asm.ld(Reg::T8, base, fold + SYM_FNCODE);
                if self.full() {
                    asm.with_annot(check_annot(TagOpKind::Check, CheckCat::List), |a| {
                        a.bri(Cond::Eq, Reg::T8, 0, self.rt.err_funcall)
                    });
                } else {
                    asm.nop(); // load delay before jalr
                }
                asm.jalr(Reg::T8, Reg::Link);
                Ok(())
            }
            Expr::Prim(p, args) => self.prim(asm, ctx, *p, args),
        }
    }

    // --- conditional compilation of predicates -----------------------------------

    /// Branch to `target` when `e` evaluates to nil (false).
    fn branch_false(
        &self,
        asm: &mut Asm,
        ctx: &mut FnCtx,
        e: &Expr,
        target: Label,
    ) -> Result<(), CompileError> {
        self.branch_bool(asm, ctx, e, target, false)
    }

    /// Branch to `target` when `e` evaluates truthy.
    fn branch_true(
        &self,
        asm: &mut Asm,
        ctx: &mut FnCtx,
        e: &Expr,
        target: Label,
    ) -> Result<(), CompileError> {
        self.branch_bool(asm, ctx, e, target, true)
    }

    /// Shared implementation: branch to `target` when truthiness == `want`.
    fn branch_bool(
        &self,
        asm: &mut Asm,
        ctx: &mut FnCtx,
        e: &Expr,
        target: Label,
        want: bool,
    ) -> Result<(), CompileError> {
        match e {
            Expr::Nil => {
                if !want {
                    asm.j(target);
                }
                return Ok(());
            }
            Expr::T | Expr::Int(_) | Expr::Const(_) => {
                if want {
                    asm.j(target);
                }
                return Ok(());
            }
            Expr::Prim(Prim::Null, args) => {
                return self.branch_bool(asm, ctx, &args[0], target, !want);
            }
            Expr::Prim(Prim::Eq, args) => {
                self.eval_args(asm, ctx, args, &[Reg::A0, Reg::A1])?;
                let cond = if want { Cond::Eq } else { Cond::Ne };
                asm.br(cond, Reg::A0, Reg::A1, target);
                return Ok(());
            }
            Expr::Prim(p, args)
                if matches!(
                    p,
                    Prim::Pairp
                        | Prim::Atom
                        | Prim::Idp
                        | Prim::Vectorp
                        | Prim::Floatp
                        | Prim::Intp
                ) =>
            {
                self.eval(asm, ctx, &args[0])?;
                let (tag, invert) = match p {
                    Prim::Pairp => (Some(Tag::Pair), false),
                    Prim::Atom => (Some(Tag::Pair), true),
                    Prim::Idp => (Some(Tag::Symbol), false),
                    Prim::Vectorp => (Some(Tag::Vector), false),
                    Prim::Floatp => (Some(Tag::Float), false),
                    Prim::Intp => (None, false),
                    _ => unreachable!(),
                };
                let if_match = want != invert;
                match tag {
                    Some(tag) => self.t.branch_type(
                        asm,
                        Reg::A0,
                        Reg::X0,
                        tag,
                        target,
                        if_match,
                        CheckCat::NotChecking,
                        Provenance::Base,
                    ),
                    None => self.t.branch_int(
                        asm,
                        Reg::A0,
                        Reg::X0,
                        target,
                        if_match,
                        CheckCat::NotChecking,
                        Provenance::Base,
                    ),
                }
                return Ok(());
            }
            Expr::Prim(p, args)
                if matches!(
                    p,
                    Prim::Lessp | Prim::Greaterp | Prim::Leq | Prim::Geq | Prim::NumEq
                ) =>
            {
                self.eval_args(asm, ctx, args, &[Reg::A0, Reg::A1])?;
                let cond = match p {
                    Prim::Lessp => Cond::Lt,
                    Prim::Greaterp => Cond::Gt,
                    Prim::Leq => Cond::Le,
                    Prim::Geq => Cond::Ge,
                    Prim::NumEq => Cond::Eq,
                    _ => unreachable!(),
                };
                let cond = if want { cond } else { cond.negate() };
                if self.full() {
                    let slow = asm.new_label();
                    let done = asm.new_label();
                    if !known_int(&args[0]) {
                        self.t.check_int(
                            asm,
                            Reg::A0,
                            Reg::X0,
                            slow,
                            CheckCat::Arith,
                            Provenance::Checking,
                        );
                    }
                    if !known_int(&args[1]) {
                        self.t.check_int(
                            asm,
                            Reg::A1,
                            Reg::X0,
                            slow,
                            CheckCat::Arith,
                            Provenance::Checking,
                        );
                    }
                    asm.br(cond, Reg::A0, Reg::A1, target);
                    asm.bind(done);
                    let rt = self.cmp_rt(*p);
                    ctx.deferred.push(Deferred {
                        slow,
                        done,
                        body: DeferredBody::GenericCall {
                            undo: None,
                            rt,
                            branch_nil_to: Some(if want { done } else { target }),
                        },
                    });
                    // When `want`, a nil result must fall through to done and a
                    // non-nil result must reach `target`; encode by branching on
                    // nil to the "false" destination and jumping to the other.
                    // Handled in emit_deferred via branch_nil_to + done/target.
                    if want {
                        // deferred: jal; beq A0,nil→done(false-case falls back); j target
                        // adjust: store target as the done-jump
                        let d = ctx.deferred.last_mut().expect("just pushed");
                        let DeferredBody::GenericCall { branch_nil_to, .. } = &mut d.body;
                        *branch_nil_to = Some(done);
                        d.done = target;
                    }
                    return Ok(());
                }
                asm.br(cond, Reg::A0, Reg::A1, target);
                return Ok(());
            }
            Expr::And(es) if !es.is_empty() => {
                if !want {
                    for e in es {
                        self.branch_false(asm, ctx, e, target)?;
                    }
                } else {
                    let out = asm.new_label();
                    for (i, e) in es.iter().enumerate() {
                        if i + 1 < es.len() {
                            self.branch_false(asm, ctx, e, out)?;
                        } else {
                            self.branch_true(asm, ctx, e, target)?;
                        }
                    }
                    asm.bind(out);
                }
                return Ok(());
            }
            Expr::Or(es) if !es.is_empty() => {
                if want {
                    for e in es {
                        self.branch_true(asm, ctx, e, target)?;
                    }
                } else {
                    let out = asm.new_label();
                    for (i, e) in es.iter().enumerate() {
                        if i + 1 < es.len() {
                            self.branch_true(asm, ctx, e, out)?;
                        } else {
                            self.branch_false(asm, ctx, e, target)?;
                        }
                    }
                    asm.bind(out);
                }
                return Ok(());
            }
            _ => {}
        }
        // General case: materialise and test against nil.
        self.eval(asm, ctx, e)?;
        let cond = if want { Cond::Ne } else { Cond::Eq };
        asm.br(cond, Reg::A0, Reg::Nil, target);
        Ok(())
    }

    // --- primitives -----------------------------------------------------------------

    fn cmp_rt(&self, p: Prim) -> Label {
        match p {
            Prim::Lessp => self.rt.generic_less,
            Prim::Greaterp => self.rt.generic_greater,
            Prim::Leq => self.rt.generic_leq,
            Prim::Geq => self.rt.generic_geq,
            Prim::NumEq => self.rt.generic_numeq,
            _ => unreachable!("not a comparison"),
        }
    }

    fn arith_rt(&self, p: Prim) -> Label {
        match p {
            Prim::Plus | Prim::Add1 => self.rt.generic_add,
            Prim::Difference | Prim::Sub1 | Prim::Minus => self.rt.generic_sub,
            Prim::Times => self.rt.generic_mul,
            Prim::Quotient => self.rt.generic_div,
            Prim::Remainder => self.rt.generic_rem,
            _ => unreachable!("not arithmetic"),
        }
    }

    /// Inline pair allocation: car in `A0`, cdr in `A1`, tagged result in `A0`.
    fn alloc_pair(&self, asm: &mut Asm) {
        let ok = asm.new_label();
        asm.emit(Insn::Addi(Reg::X0, Reg::Hp, 8));
        asm.br(Cond::Le, Reg::X0, Reg::Hl, ok);
        asm.li(Reg::A2, 8);
        asm.jal(self.rt.gc_collect, Reg::Link);
        asm.bind(ok);
        asm.st(Reg::A0, Reg::Hp, 0);
        asm.st(Reg::A1, Reg::Hp, 4);
        self.t
            .insert(asm, Reg::A0, Reg::Hp, Reg::X1, Tag::Pair, BASE_INSERT);
        asm.emit(Insn::Addi(Reg::Hp, Reg::Hp, 8));
    }

    /// car/cdr/rplaca/rplacd shared helper. `off` = 0 (car) or 4 (cdr); when
    /// `store` the value register `A1` is written.
    fn list_access(&self, asm: &mut Asm, off: i32, store: bool) {
        let pair_raw = self.t.check_value(Tag::Pair);
        if self.parallel_lists() {
            let field = self.t.field();
            if store {
                asm.emit(Insn::StChk {
                    src: Reg::A1,
                    base: Reg::A0,
                    disp: off,
                    field,
                    expect: pair_raw,
                    on_fail: self.rt.err_car.id(),
                });
            } else {
                asm.emit(Insn::LdChk {
                    rd: Reg::A0,
                    base: Reg::A0,
                    disp: off,
                    field,
                    expect: pair_raw,
                    on_fail: self.rt.err_car.id(),
                });
            }
            return;
        }
        if self.full() {
            self.t.check_exact(
                asm,
                Reg::A0,
                Reg::X0,
                Tag::Pair,
                self.rt.err_car,
                CheckCat::List,
                Provenance::Checking,
            );
        }
        let (base, fold) = self
            .t
            .address(asm, Reg::A0, Reg::X0, Tag::Pair, BASE_REMOVE);
        if store {
            asm.st(Reg::A1, base, fold + off);
        } else {
            asm.ld(Reg::A0, base, fold + off);
        }
    }

    /// Full-mode checked binary integer arithmetic with an out-of-line generic
    /// slow path. Operands in `A0`/`A1`, result in `A0`. `known_int` marks
    /// operands the compiler has proven to be fixnums (integer literals), whose
    /// tests are elided — the paper's §3 point that context-derived types remove
    /// checks "without affecting correctness or security".
    fn generic_binary(&self, asm: &mut Asm, ctx: &mut FnCtx, p: Prim, known_int: (bool, bool)) {
        let slow = asm.new_label();
        let done = asm.new_label();
        let overflow_checked = matches!(p, Prim::Plus | Prim::Difference);

        if self.t.hw.generic_arith && overflow_checked {
            // §6.2.2 hardware: one cycle, trap to the software path.
            let int_test = self.t.int_test();
            let insn = if p == Prim::Plus {
                Insn::AddG {
                    rd: Reg::A0,
                    rs: Reg::A0,
                    rt: Reg::A1,
                    int_test,
                    on_fail: slow.id(),
                }
            } else {
                Insn::SubG {
                    rd: Reg::A0,
                    rs: Reg::A0,
                    rt: Reg::A1,
                    int_test,
                    on_fail: slow.id(),
                }
            };
            asm.emit(insn);
            asm.bind(done);
            ctx.deferred.push(Deferred {
                slow,
                done,
                body: DeferredBody::GenericCall {
                    undo: None,
                    rt: self.arith_rt(p),
                    branch_nil_to: None,
                },
            });
            return;
        }

        if self.t.scheme == TagScheme::HighTag6 && overflow_checked {
            // §4.2 arithmetic-safe encoding: operate first, one check on the
            // result. The slow path reconstructs the operand by undoing the op.
            let (op, undo): (Insn, Insn) = if p == Prim::Plus {
                (
                    Insn::Add(Reg::A0, Reg::A0, Reg::A1),
                    Insn::Sub(Reg::A0, Reg::A0, Reg::A1),
                )
            } else {
                (
                    Insn::Sub(Reg::A0, Reg::A0, Reg::A1),
                    Insn::Add(Reg::A0, Reg::A0, Reg::A1),
                )
            };
            asm.emit(op);
            self.t.check_int(
                asm,
                Reg::A0,
                Reg::X0,
                slow,
                CheckCat::Arith,
                Provenance::Checking,
            );
            asm.bind(done);
            ctx.deferred.push(Deferred {
                slow,
                done,
                body: DeferredBody::GenericCall {
                    undo: Some(undo),
                    rt: self.arith_rt(p),
                    branch_nil_to: None,
                },
            });
            return;
        }

        // Plain integer-biased sequence: test both operands, operate, and (for
        // add/sub) catch overflow via the type check on the result — 10 cycles
        // for an add under HighTag5, as in §4.2.
        if !known_int.0 {
            self.t.check_int(
                asm,
                Reg::A0,
                Reg::X0,
                slow,
                CheckCat::Arith,
                Provenance::Checking,
            );
        }
        if !known_int.1 {
            self.t.check_int(
                asm,
                Reg::A1,
                Reg::X0,
                slow,
                CheckCat::Arith,
                Provenance::Checking,
            );
        }
        let mut undo = None;
        match p {
            Prim::Plus => {
                asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A1));
                undo = Some(Insn::Sub(Reg::A0, Reg::A0, Reg::A1));
            }
            Prim::Difference => {
                asm.emit(Insn::Sub(Reg::A0, Reg::A0, Reg::A1));
                undo = Some(Insn::Add(Reg::A0, Reg::A0, Reg::A1));
            }
            Prim::Times => self.emit_times(asm),
            Prim::Quotient => {
                asm.with_annot(check_annot(TagOpKind::Check, CheckCat::Arith), |a| {
                    a.beq(Reg::A1, Reg::Zero, self.rt.err_div0)
                });
                self.emit_quotient(asm);
            }
            Prim::Remainder => {
                asm.with_annot(check_annot(TagOpKind::Check, CheckCat::Arith), |a| {
                    a.beq(Reg::A1, Reg::Zero, self.rt.err_div0)
                });
                asm.emit(Insn::Rem(Reg::A0, Reg::A0, Reg::A1));
            }
            _ => unreachable!(),
        }
        if overflow_checked {
            // Overflow shows up as a failed integer test on the result (§2.1).
            let ovf = asm.new_label();
            self.t.check_int(
                asm,
                Reg::A0,
                Reg::X0,
                ovf,
                CheckCat::Arith,
                Provenance::Checking,
            );
            asm.bind(done);
            ctx.deferred.push(Deferred {
                slow: ovf,
                done,
                body: DeferredBody::GenericCall {
                    undo,
                    rt: self.arith_rt(p),
                    branch_nil_to: None,
                },
            });
            // The operand-test failures jump to `slow`, which shares the routine
            // but needs no undo.
            let done2 = done;
            ctx.deferred.push(Deferred {
                slow,
                done: done2,
                body: DeferredBody::GenericCall {
                    undo: None,
                    rt: self.arith_rt(p),
                    branch_nil_to: None,
                },
            });
        } else {
            asm.bind(done);
            ctx.deferred.push(Deferred {
                slow,
                done,
                body: DeferredBody::GenericCall {
                    undo: None,
                    rt: self.arith_rt(p),
                    branch_nil_to: None,
                },
            });
        }
    }

    /// Multiply on tagged operands (low tags need a de-scale).
    fn emit_times(&self, asm: &mut Asm) {
        if self.t.scheme.is_high() {
            asm.emit(Insn::Mul(Reg::A0, Reg::A0, Reg::A1));
        } else {
            asm.emit(Insn::Sra(Reg::X0, Reg::A0, 2));
            asm.emit(Insn::Mul(Reg::A0, Reg::X0, Reg::A1));
        }
    }

    /// Divide on tagged operands (low tags re-scale the quotient).
    fn emit_quotient(&self, asm: &mut Asm) {
        if self.t.scheme.is_high() {
            asm.emit(Insn::Div(Reg::A0, Reg::A0, Reg::A1));
        } else {
            asm.emit(Insn::Div(Reg::X0, Reg::A0, Reg::A1));
            asm.emit(Insn::Sll(Reg::A0, Reg::X0, 2));
        }
    }

    /// Turn the machine truth value produced by `emit` into t/nil in `A0`.
    fn boolify(&self, asm: &mut Asm, emit: impl FnOnce(&mut Asm, Label)) {
        let yes = asm.new_label();
        let end = asm.new_label();
        emit(asm, yes);
        asm.mov(Reg::A0, Reg::Nil);
        asm.j(end);
        asm.bind(yes);
        asm.mov(Reg::A0, Reg::TrueR);
        asm.bind(end);
    }

    fn prim(
        &self,
        asm: &mut Asm,
        ctx: &mut FnCtx,
        p: Prim,
        args: &[Expr],
    ) -> Result<(), CompileError> {
        use Prim::*;
        // Stage arguments.
        match p.arity() {
            0 => {}
            1 => self.eval_args(asm, ctx, args, &[Reg::A0])?,
            2 => self.eval_args(asm, ctx, args, &[Reg::A0, Reg::A1])?,
            3 => self.eval_args(asm, ctx, args, &[Reg::A0, Reg::A1, Reg::A2])?,
            _ => unreachable!(),
        }
        match p {
            Cons => self.alloc_pair(asm),
            Car => self.list_access(asm, 0, false),
            Cdr => self.list_access(asm, 4, false),
            Rplaca => {
                self.list_access(asm, 0, true);
                // result: the pair (still in A0)
            }
            Rplacd => {
                self.list_access(asm, 4, true);
            }
            Eq => self.boolify(asm, |a, yes| a.beq(Reg::A0, Reg::A1, yes)),
            Null => self.boolify(asm, |a, yes| a.beq(Reg::A0, Reg::Nil, yes)),
            Atom | Pairp | Idp | Vectorp | Floatp | Intp => {
                let (tag, invert) = match p {
                    Pairp => (Some(Tag::Pair), false),
                    Atom => (Some(Tag::Pair), true),
                    Idp => (Some(Tag::Symbol), false),
                    Vectorp => (Some(Tag::Vector), false),
                    Floatp => (Some(Tag::Float), false),
                    Intp => (None, false),
                    _ => unreachable!(),
                };
                self.boolify(asm, |a, yes| match tag {
                    Some(tag) => self.t.branch_type(
                        a,
                        Reg::A0,
                        Reg::X0,
                        tag,
                        yes,
                        !invert,
                        CheckCat::NotChecking,
                        Provenance::Base,
                    ),
                    None => self.t.branch_int(
                        a,
                        Reg::A0,
                        Reg::X0,
                        yes,
                        true,
                        CheckCat::NotChecking,
                        Provenance::Base,
                    ),
                });
            }
            Plus | Difference | Times | Quotient | Remainder => {
                if self.full() {
                    let known = (known_int(&args[0]), known_int(&args[1]));
                    self.generic_binary(asm, ctx, p, known);
                } else {
                    match p {
                        Plus => asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A1)),
                        Difference => asm.emit(Insn::Sub(Reg::A0, Reg::A0, Reg::A1)),
                        Times => self.emit_times(asm),
                        Quotient => self.emit_quotient(asm),
                        Remainder => asm.emit(Insn::Rem(Reg::A0, Reg::A0, Reg::A1)),
                        _ => unreachable!(),
                    }
                }
            }
            Add1 | Sub1 => {
                let inc = if p == Add1 { self.one() } else { -self.one() };
                if self.full() {
                    // Reuse the binary machinery with a literal 1 in A1 (whose
                    // test is elided: it is a known fixnum).
                    asm.li(Reg::A1, self.one());
                    let known = (known_int(&args[0]), true);
                    self.generic_binary(asm, ctx, if p == Add1 { Plus } else { Difference }, known);
                } else {
                    asm.emit(Insn::Addi(Reg::A0, Reg::A0, inc));
                }
            }
            Minus => {
                if self.full() {
                    // 0 - x through the checked path.
                    asm.mov(Reg::A1, Reg::A0);
                    asm.li(Reg::A0, 0);
                    self.generic_binary(asm, ctx, Difference, (true, known_int(&args[0])));
                } else {
                    asm.emit(Insn::Sub(Reg::A0, Reg::Zero, Reg::A0));
                }
            }
            Lessp | Greaterp | Leq | Geq | NumEq => {
                let cond = match p {
                    Lessp => Cond::Lt,
                    Greaterp => Cond::Gt,
                    Leq => Cond::Le,
                    Geq => Cond::Ge,
                    NumEq => Cond::Eq,
                    _ => unreachable!(),
                };
                if self.full() {
                    let slow = asm.new_label();
                    let done = asm.new_label();
                    if !known_int(&args[0]) {
                        self.t.check_int(
                            asm,
                            Reg::A0,
                            Reg::X0,
                            slow,
                            CheckCat::Arith,
                            Provenance::Checking,
                        );
                    }
                    if !known_int(&args[1]) {
                        self.t.check_int(
                            asm,
                            Reg::A1,
                            Reg::X0,
                            slow,
                            CheckCat::Arith,
                            Provenance::Checking,
                        );
                    }
                    self.boolify(asm, |a, yes| a.br(cond, Reg::A0, Reg::A1, yes));
                    asm.bind(done);
                    ctx.deferred.push(Deferred {
                        slow,
                        done,
                        body: DeferredBody::GenericCall {
                            undo: None,
                            rt: self.cmp_rt(p),
                            branch_nil_to: None,
                        },
                    });
                } else {
                    self.boolify(asm, |a, yes| a.br(cond, Reg::A0, Reg::A1, yes));
                }
            }
            Mkvect => self.emit_mkvect(asm),
            Getv => self.emit_getv(asm),
            Putv => self.emit_putv(asm),
            Upbv => self.emit_upbv(asm),
            Plist => {
                if self.parallel_all() {
                    asm.emit(Insn::LdChk {
                        rd: Reg::A0,
                        base: Reg::A0,
                        disp: SYM_PLIST,
                        field: self.t.field(),
                        expect: self.t.check_value(Tag::Symbol),
                        on_fail: self.rt.err_car.id(),
                    });
                } else {
                    if self.full() {
                        self.t.check_exact(
                            asm,
                            Reg::A0,
                            Reg::X0,
                            Tag::Symbol,
                            self.rt.err_car,
                            CheckCat::List,
                            Provenance::Checking,
                        );
                    }
                    let (base, fold) =
                        self.t
                            .address(asm, Reg::A0, Reg::X0, Tag::Symbol, BASE_REMOVE);
                    asm.ld(Reg::A0, base, fold + SYM_PLIST);
                }
            }
            Setplist => {
                if self.parallel_all() {
                    asm.emit(Insn::StChk {
                        src: Reg::A1,
                        base: Reg::A0,
                        disp: SYM_PLIST,
                        field: self.t.field(),
                        expect: self.t.check_value(Tag::Symbol),
                        on_fail: self.rt.err_car.id(),
                    });
                } else {
                    if self.full() {
                        self.t.check_exact(
                            asm,
                            Reg::A0,
                            Reg::X0,
                            Tag::Symbol,
                            self.rt.err_car,
                            CheckCat::List,
                            Provenance::Checking,
                        );
                    }
                    let (base, fold) =
                        self.t
                            .address(asm, Reg::A0, Reg::X0, Tag::Symbol, BASE_REMOVE);
                    asm.st(Reg::A1, base, fold + SYM_PLIST);
                }
                asm.mov(Reg::A0, Reg::A1);
            }
            Wrch => {
                if self.full() {
                    self.t.check_int(
                        asm,
                        Reg::A0,
                        Reg::X0,
                        self.rt.err_arith,
                        CheckCat::Arith,
                        Provenance::Checking,
                    );
                }
                if self.t.scheme.is_high() {
                    asm.write(Reg::A0, WriteKind::Char);
                } else {
                    asm.emit(Insn::Sra(Reg::X0, Reg::A0, 2));
                    asm.write(Reg::X0, WriteKind::Char);
                }
            }
            Wrint => {
                if self.full() {
                    self.t.check_int(
                        asm,
                        Reg::A0,
                        Reg::X0,
                        self.rt.err_arith,
                        CheckCat::Arith,
                        Provenance::Checking,
                    );
                }
                if self.t.scheme.is_high() {
                    asm.write(Reg::A0, WriteKind::Int);
                } else {
                    asm.emit(Insn::Sra(Reg::X0, Reg::A0, 2));
                    asm.write(Reg::X0, WriteKind::Int);
                }
            }
            PrinName => {
                if self.full() {
                    self.t.check_exact(
                        asm,
                        Reg::A0,
                        Reg::X0,
                        Tag::Symbol,
                        self.rt.err_car,
                        CheckCat::List,
                        Provenance::Checking,
                    );
                }
                asm.jal(self.rt.print_symbol, Reg::Link);
            }
            Reclaim => {
                asm.li(Reg::A2, 0);
                asm.jal(self.rt.gc_collect, Reg::Link);
                asm.mov(Reg::A0, Reg::Nil);
            }
            FPlus | FDifference | FTimes | FQuotient => {
                self.emit_float_binary(asm, p);
            }
            FLessp => {
                self.emit_float_unbox(asm, Reg::A0, Reg::T8);
                self.emit_float_unbox(asm, Reg::A1, Reg::T9);
                asm.with_annot(GENERIC_ARITH, |a| {
                    a.emit(Insn::Fop(FpOp::Lt, Reg::X0, Reg::T8, Reg::T9))
                });
                self.boolify(asm, |a, yes| a.bne(Reg::X0, Reg::Zero, yes));
            }
            FloatFromInt => {
                if self.full() {
                    self.t.check_int(
                        asm,
                        Reg::A0,
                        Reg::X0,
                        self.rt.err_arith,
                        CheckCat::Arith,
                        Provenance::Checking,
                    );
                }
                if self.t.scheme.is_high() {
                    asm.emit(Insn::Fop(FpOp::FromInt, Reg::T8, Reg::A0, Reg::Zero));
                } else {
                    asm.emit(Insn::Sra(Reg::T8, Reg::A0, 2));
                    asm.emit(Insn::Fop(FpOp::FromInt, Reg::T8, Reg::T8, Reg::Zero));
                }
                self.emit_box_float(asm, Reg::T8);
            }
        }
        Ok(())
    }

    /// Unbox the float in `src` (type-checked in full mode) to raw bits in `dst`.
    fn emit_float_unbox(&self, asm: &mut Asm, src: Reg, dst: Reg) {
        if self.full() {
            self.t.check_exact(
                asm,
                src,
                Reg::X0,
                Tag::Float,
                self.rt.err_arith,
                CheckCat::Arith,
                Provenance::Checking,
            );
        }
        let (base, fold) = self.t.address(asm, src, Reg::X0, Tag::Float, BASE_REMOVE);
        asm.ld(dst, base, fold + 4);
    }

    /// Box the raw float bits in `src` into a fresh float object in `A0`.
    fn emit_box_float(&self, asm: &mut Asm, src: Reg) {
        debug_assert!(
            matches!(src, Reg::T8 | Reg::T9),
            "raw bits stay out of root registers"
        );
        let ok = asm.new_label();
        asm.emit(Insn::Addi(Reg::X0, Reg::Hp, 8));
        asm.br(Cond::Le, Reg::X0, Reg::Hl, ok);
        asm.li(Reg::A2, 8);
        asm.jal(self.rt.gc_collect, Reg::Link);
        asm.bind(ok);
        asm.li(
            Reg::X0,
            crate::layout::header(crate::layout::FLOAT_CODE, 1) as i32,
        );
        asm.st(Reg::X0, Reg::Hp, 0);
        asm.st(src, Reg::Hp, 4);
        self.t
            .insert(asm, Reg::A0, Reg::Hp, Reg::X1, Tag::Float, BASE_INSERT);
        asm.emit(Insn::Addi(Reg::Hp, Reg::Hp, 8));
    }

    fn emit_float_binary(&self, asm: &mut Asm, p: Prim) {
        let fop = match p {
            Prim::FPlus => FpOp::Add,
            Prim::FDifference => FpOp::Sub,
            Prim::FTimes => FpOp::Mul,
            Prim::FQuotient => FpOp::Div,
            _ => unreachable!(),
        };
        self.emit_float_unbox(asm, Reg::A0, Reg::T8);
        self.emit_float_unbox(asm, Reg::A1, Reg::T9);
        asm.with_annot(GENERIC_ARITH, |a| {
            a.emit(Insn::Fop(fop, Reg::T8, Reg::T8, Reg::T9))
        });
        self.emit_box_float(asm, Reg::T8);
    }

    fn emit_mkvect(&self, asm: &mut Asm) {
        if self.full() {
            self.t.check_int(
                asm,
                Reg::A0,
                Reg::X0,
                self.rt.err_vec,
                CheckCat::Vector,
                Provenance::Checking,
            );
            asm.with_annot(check_annot(TagOpKind::Check, CheckCat::Vector), |a| {
                a.br(Cond::Lt, Reg::A0, Reg::Zero, self.rt.err_vec)
            });
        }
        // bytes = round8(4 * (n + 1))
        if self.t.scheme.is_high() {
            asm.emit(Insn::Addi(Reg::T8, Reg::A0, 1));
            asm.emit(Insn::Sll(Reg::T8, Reg::T8, 2));
        } else {
            asm.emit(Insn::Addi(Reg::T8, Reg::A0, 4));
        }
        asm.emit(Insn::Addi(Reg::T8, Reg::T8, 7));
        asm.emit(Insn::Srl(Reg::T8, Reg::T8, 3));
        asm.emit(Insn::Sll(Reg::T8, Reg::T8, 3));
        // allocate
        let ok = asm.new_label();
        asm.emit(Insn::Add(Reg::X0, Reg::Hp, Reg::T8));
        asm.br(Cond::Le, Reg::X0, Reg::Hl, ok);
        asm.mov(Reg::A2, Reg::T8);
        asm.jal(self.rt.gc_collect, Reg::Link);
        asm.mov(Reg::T8, Reg::A2);
        asm.bind(ok);
        // header
        if self.t.scheme.is_high() {
            asm.emit(Insn::Sll(Reg::X1, Reg::A0, HDR_LEN_SHIFT as u8));
        } else {
            asm.emit(Insn::Sll(Reg::X1, Reg::A0, (HDR_LEN_SHIFT - 2) as u8));
        }
        asm.emit(Insn::Ori(Reg::X1, Reg::X1, VEC_CODE));
        asm.st(Reg::X1, Reg::Hp, 0);
        // nil fill
        let lp = asm.new_label();
        let done = asm.new_label();
        asm.emit(Insn::Add(Reg::X1, Reg::Hp, Reg::T8));
        asm.emit(Insn::Addi(Reg::T9, Reg::Hp, 4));
        asm.bind(lp);
        asm.br(Cond::Ge, Reg::T9, Reg::X1, done);
        asm.st(Reg::Nil, Reg::T9, 0);
        asm.emit(Insn::Addi(Reg::T9, Reg::T9, 4));
        asm.j(lp);
        asm.bind(done);
        self.t
            .insert(asm, Reg::A0, Reg::Hp, Reg::X0, Tag::Vector, BASE_INSERT);
        asm.emit(Insn::Add(Reg::Hp, Reg::Hp, Reg::T8));
    }

    /// Vector tag + header fetch shared by getv/putv/upbv. Leaves the header in
    /// `T9` and returns the (base, fold) for element access.
    fn vector_header(&self, asm: &mut Asm) -> (Reg, i32) {
        if self.parallel_all() {
            asm.emit(Insn::LdChk {
                rd: Reg::T9,
                base: Reg::A0,
                disp: 0,
                field: self.t.field(),
                expect: self.t.check_value(Tag::Vector),
                on_fail: self.rt.err_vec.id(),
            });
            // With checked access the base register stays tagged; element access
            // goes through LdChk/StChk (high tags) or folds (low tags).
            if self.t.scheme.free_address_masking() {
                let fold = self
                    .t
                    .scheme
                    .fold_displacement(Tag::Vector)
                    .expect("low tags fold");
                (Reg::A0, fold)
            } else {
                (Reg::A0, 0)
            }
        } else {
            if self.full() {
                self.t.check_exact(
                    asm,
                    Reg::A0,
                    Reg::X0,
                    Tag::Vector,
                    self.rt.err_vec,
                    CheckCat::Vector,
                    Provenance::Checking,
                );
            }
            let (base, fold) = self
                .t
                .address(asm, Reg::A0, Reg::T8, Tag::Vector, BASE_REMOVE);
            if self.full() {
                asm.with_annot(check_annot(TagOpKind::Check, CheckCat::Vector), |a| {
                    a.ld(Reg::T9, base, fold)
                });
            }
            (base, fold)
        }
    }

    /// Emit the index-type and bounds checks (full mode only); index in `A1`,
    /// header in `T9`.
    fn vector_bounds(&self, asm: &mut Asm) {
        if !self.full() {
            return;
        }
        self.t.check_int(
            asm,
            Reg::A1,
            Reg::X0,
            self.rt.err_vec,
            CheckCat::Vector,
            Provenance::Checking,
        );
        let a = check_annot(TagOpKind::Check, CheckCat::Vector);
        let shift = if self.t.scheme.is_high() {
            HDR_LEN_SHIFT
        } else {
            HDR_LEN_SHIFT - 2
        };
        asm.with_annot(a, |s| {
            s.emit(Insn::Srl(Reg::X0, Reg::T9, shift as u8));
            s.br(Cond::Ge, Reg::A1, Reg::X0, self.rt.err_bounds);
            s.br(Cond::Lt, Reg::A1, Reg::Zero, self.rt.err_bounds);
        });
    }

    fn emit_getv(&self, asm: &mut Asm) {
        let (base, fold) = self.vector_header(asm);
        self.vector_bounds(asm);
        if self.parallel_all() && !self.t.scheme.free_address_masking() {
            // element through a checked load (the sum keeps the tag bits).
            asm.emit(Insn::Sll(Reg::X1, Reg::A1, 2));
            asm.emit(Insn::Add(Reg::X1, Reg::X1, Reg::A0));
            asm.emit(Insn::LdChk {
                rd: Reg::A0,
                base: Reg::X1,
                disp: 4,
                field: self.t.field(),
                expect: self.t.check_value(Tag::Vector),
                on_fail: self.rt.err_vec.id(),
            });
            return;
        }
        if self.t.scheme.is_high() {
            asm.emit(Insn::Sll(Reg::X1, Reg::A1, 2));
            asm.emit(Insn::Add(Reg::X1, Reg::X1, base));
        } else {
            asm.emit(Insn::Add(Reg::X1, base, Reg::A1));
        }
        asm.ld(Reg::A0, Reg::X1, fold + 4);
    }

    fn emit_putv(&self, asm: &mut Asm) {
        let (base, fold) = self.vector_header(asm);
        self.vector_bounds(asm);
        if self.parallel_all() && !self.t.scheme.free_address_masking() {
            asm.emit(Insn::Sll(Reg::X1, Reg::A1, 2));
            asm.emit(Insn::Add(Reg::X1, Reg::X1, Reg::A0));
            asm.emit(Insn::StChk {
                src: Reg::A2,
                base: Reg::X1,
                disp: 4,
                field: self.t.field(),
                expect: self.t.check_value(Tag::Vector),
                on_fail: self.rt.err_vec.id(),
            });
        } else {
            if self.t.scheme.is_high() {
                asm.emit(Insn::Sll(Reg::X1, Reg::A1, 2));
                asm.emit(Insn::Add(Reg::X1, Reg::X1, base));
            } else {
                asm.emit(Insn::Add(Reg::X1, base, Reg::A1));
            }
            asm.st(Reg::A2, Reg::X1, fold + 4);
        }
        asm.mov(Reg::A0, Reg::A2);
    }

    fn emit_upbv(&self, asm: &mut Asm) {
        let (base, fold) = self.vector_header(asm);
        if !(self.parallel_all() || self.full()) {
            // header not yet loaded
            asm.ld(Reg::T9, base, fold);
            asm.nop();
        } else if !self.parallel_all() && !self.full() {
            unreachable!();
        }
        if !self.full() && !self.parallel_all() {
            // loaded just above
        } else if !self.parallel_all() && self.full() {
            // header already in T9 from vector_header
        }
        let shift = if self.t.scheme.is_high() {
            HDR_LEN_SHIFT
        } else {
            HDR_LEN_SHIFT - 2
        };
        asm.emit(Insn::Srl(Reg::A0, Reg::T9, shift as u8));
    }

    // --- functions --------------------------------------------------------------

    /// Emit one function: prologue, body, epilogue, deferred blocks.
    pub fn emit_fn(&self, asm: &mut Asm, f: &FnDef, label: Label) -> Result<(), CompileError> {
        asm.bind(label);
        asm.name_label(&format!("fn:{}", f.name), label);
        let mut ctx = FnCtx::new(f.nslots);
        let frame_bytes = 4 * ctx.frame_words as i32;
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, -frame_bytes));
        // Stack-overflow check: one compare-and-branch per call, uniform across
        // every configuration so relative measurements are unaffected.
        asm.bri(
            Cond::Lt,
            Reg::Sp,
            self.layout.stack_low as i32,
            self.rt.err_stack,
        );
        // Save the return address as a fixnum-looking word so the GC can scan
        // frames blindly.
        asm.emit(Insn::Sll(Reg::X0, Reg::Link, 2));
        asm.st(Reg::X0, Reg::Sp, 0);
        for i in 0..f.params {
            asm.st(Reg::ARGS[i], Reg::Sp, 4 * (1 + i) as i32);
        }
        if f.body.is_empty() {
            asm.mov(Reg::A0, Reg::Nil);
        }
        for e in &f.body {
            self.eval(asm, &mut ctx, e)?;
        }
        debug_assert_eq!(ctx.push_depth, 0, "unbalanced pushes in {}", f.name);
        // Epilogue.
        asm.ld(Reg::X0, Reg::Sp, 0);
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, frame_bytes));
        asm.emit(Insn::Sra(Reg::X0, Reg::X0, 2));
        asm.jr(Reg::X0);
        self.emit_deferred(asm, &mut ctx);
        Ok(())
    }

    /// Emit the program entry: register setup, top-level forms, halt.
    pub fn emit_main(&self, asm: &mut Asm) -> Result<Label, CompileError> {
        let entry = asm.here("main");
        asm.li(Reg::Sp, self.layout.stack_top as i32);
        asm.li(Reg::Hp, self.layout.heap_a as i32);
        asm.li(
            Reg::Hl,
            (self.layout.heap_a + self.layout.semi_bytes) as i32,
        );
        asm.li(Reg::Nil, self.layout.nil_word as i32);
        asm.li(Reg::TrueR, self.layout.t_word as i32);
        asm.li(Reg::Mask, self.t.pointer_mask() as i32);
        asm.li(Reg::Gp, self.layout.globals_base as i32);
        if self.t.preshifted_pair_tag && self.t.scheme.is_high() {
            let shift = 32 - self.t.scheme.tag_bits();
            asm.li(Reg::Pt, (self.t.check_value(Tag::Pair) << shift) as i32);
        }
        let mut ctx = FnCtx::new(0);
        for e in &self.unit.top {
            self.eval(asm, &mut ctx, e)?;
        }
        asm.halt(Reg::Zero);
        self.emit_deferred(asm, &mut ctx);
        Ok(entry)
    }

    fn emit_deferred(&self, asm: &mut Asm, ctx: &mut FnCtx) {
        for d in ctx.deferred.drain(..) {
            asm.bind(d.slow);
            match d.body {
                DeferredBody::GenericCall {
                    undo,
                    rt,
                    branch_nil_to,
                } => {
                    if let Some(u) = undo {
                        asm.emit_annot(u, GENERIC_ARITH);
                    }
                    asm.with_annot(GENERIC_ARITH, |a| a.jal(rt, Reg::Link));
                    if let Some(nil_target) = branch_nil_to {
                        asm.with_annot(GENERIC_ARITH, |a| a.beq(Reg::A0, Reg::Nil, nil_target));
                    }
                    asm.j(d.done);
                }
            }
        }
    }
}
