//! `lispc` — compile a Lisp source file and run it on the simulated MIPS-X.
//!
//! ```text
//! lispc FILE [--scheme high5|high6|low2|low3] [--check] [--hw drop|tagbr|chk-lists|chk-all|genarith|max|spur]
//!       [--heap KB] [--stats] [--listing]
//! ```

use std::process::ExitCode;

use lisp::{compile, run, CheckingMode, IntTestMethod, Options};
use mipsx::{HwConfig, ParallelCheck, TagOpKind};
use tagword::TagScheme;

fn usage() -> ! {
    eprintln!(
        "usage: lispc FILE [--scheme high5|high6|low2|low3] [--check] \
         [--hw drop|tagbr|chk-lists|chk-all|genarith|max|spur] [--int-test signext|tagcmp] \
         [--heap KB] [--stats] [--listing]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut file = None;
    let mut opts = Options::default();
    let mut stats = false;
    let mut listing = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => {
                opts.scheme = match args.next().as_deref() {
                    Some("high5") => TagScheme::HighTag5,
                    Some("high6") => TagScheme::HighTag6,
                    Some("low2") => TagScheme::LowTag2,
                    Some("low3") => TagScheme::LowTag3,
                    _ => usage(),
                }
            }
            "--check" => opts.checking = CheckingMode::Full,
            "--int-test" => {
                opts.int_test_method = match args.next().as_deref() {
                    Some("signext") => IntTestMethod::SignExtend,
                    Some("tagcmp") => IntTestMethod::TagCompare,
                    _ => usage(),
                }
            }
            "--hw" => {
                opts.hw = match args.next().as_deref() {
                    Some("drop") => HwConfig::with_address_drop(5),
                    Some("tagbr") => HwConfig::with_tag_branch(),
                    Some("chk-lists") => HwConfig::with_parallel_check(ParallelCheck::Lists),
                    Some("chk-all") => HwConfig::with_parallel_check(ParallelCheck::All),
                    Some("genarith") => HwConfig::with_generic_arith(),
                    Some("max") => HwConfig::maximal(5),
                    Some("spur") => HwConfig::spur(5),
                    _ => usage(),
                }
            }
            "--heap" => match args.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(kb) => opts.heap_semi_bytes = kb << 10,
                None => usage(),
            },
            "--stats" => stats = true,
            "--listing" => listing = true,
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };

    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lispc: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };

    let compiled = match compile(&source, &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lispc: {e}");
            return ExitCode::from(1);
        }
    };
    if listing {
        eprintln!("{}", compiled.program.listing());
    }

    match run(&compiled, 10_000_000_000) {
        Ok(o) => {
            print!("{}", o.output);
            if stats {
                eprintln!(
                    "-- {} cycles, {} instructions committed",
                    o.stats.cycles, o.stats.committed
                );
                eprintln!(
                    "-- tag handling: insert {:.2}%  remove {:.2}%  extract {:.2}%  check {:.2}%",
                    o.stats.tag_op_percent(TagOpKind::Insert),
                    o.stats.tag_op_percent(TagOpKind::Remove),
                    o.stats.tag_op_percent(TagOpKind::Extract),
                    o.stats.tag_op_percent(TagOpKind::Check),
                );
                eprintln!(
                    "-- code: {} words, {} procedures",
                    compiled.stats.object_words, compiled.stats.procedures
                );
            }
            if o.halt_code == 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("lispc: program stopped with error code {}", o.halt_code);
                ExitCode::from(u8::try_from(o.halt_code).unwrap_or(1))
            }
        }
        Err(e) => {
            eprintln!("lispc: simulation failed: {e}");
            ExitCode::from(1)
        }
    }
}
