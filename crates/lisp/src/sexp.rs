//! S-expression data type and reader.

use std::fmt;

use crate::error::CompileError;

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexp {
    /// An integer literal.
    Int(i32),
    /// A float literal (f32; used only by the generic-arithmetic experiments).
    Float(u32),
    /// A symbol (case-sensitive, lower-cased by convention).
    Sym(String),
    /// A proper or dotted list. `(a b . c)` is `List(vec![a, b], Some(c))`; a
    /// proper list has `None` as its tail.
    List(Vec<Sexp>, Option<Box<Sexp>>),
}

impl Sexp {
    /// The symbol `nil`.
    pub fn nil() -> Sexp {
        Sexp::Sym("nil".to_string())
    }

    /// Construct a proper list.
    pub fn list(items: Vec<Sexp>) -> Sexp {
        if items.is_empty() {
            Sexp::nil()
        } else {
            Sexp::List(items, None)
        }
    }

    /// Whether this is the symbol `nil` or the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Sexp::Sym(s) if s == "nil")
    }

    /// The symbol name, if this is a symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Sexp::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The proper-list items, if this is a proper list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items, None) => Some(items),
            _ => None,
        }
    }

    /// Whether the expression is a list whose head is the symbol `head`.
    pub fn is_form(&self, head: &str) -> bool {
        matches!(self, Sexp::List(items, _) if items.first().and_then(Sexp::as_sym) == Some(head))
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Int(i) => write!(f, "{i}"),
            Sexp::Float(bits) => write!(f, "{:?}", f32::from_bits(*bits)),
            Sexp::Sym(s) => write!(f, "{s}"),
            Sexp::List(items, tail) => {
                write!(f, "(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{it}")?;
                }
                if let Some(t) = tail {
                    write!(f, " . {t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str) -> Self {
        Reader {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::Read {
            line: self.line,
            message: msg.into(),
        }
    }

    fn read(&mut self) -> Result<Option<Sexp>, CompileError> {
        self.skip_ws();
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        match c {
            b'(' => {
                self.bump();
                self.read_list().map(Some)
            }
            b')' => Err(self.err("unexpected ')'")),
            b'\'' => {
                self.bump();
                let inner = self
                    .read()?
                    .ok_or_else(|| self.err("end of input after quote"))?;
                Ok(Some(Sexp::list(vec![Sexp::Sym("quote".into()), inner])))
            }
            _ => self.read_atom().map(Some),
        }
    }

    fn read_list(&mut self) -> Result<Sexp, CompileError> {
        let mut items = Vec::new();
        let mut tail = None;
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated list")),
                Some(b')') => {
                    self.bump();
                    break;
                }
                Some(b'.') if self.is_dot_separator() => {
                    self.bump();
                    let t = self
                        .read()?
                        .ok_or_else(|| self.err("end of input after '.'"))?;
                    if items.is_empty() {
                        return Err(self.err("dotted tail with no head"));
                    }
                    tail = Some(Box::new(t));
                    self.skip_ws();
                    if self.bump() != Some(b')') {
                        return Err(self.err("expected ')' after dotted tail"));
                    }
                    break;
                }
                Some(_) => {
                    let it = self
                        .read()?
                        .ok_or_else(|| self.err("end of input in list"))?;
                    items.push(it);
                }
            }
        }
        if items.is_empty() && tail.is_none() {
            return Ok(Sexp::nil());
        }
        // Normalise dotted nil back to a proper list.
        if let Some(t) = &tail {
            if t.is_nil() {
                tail = None;
            }
        }
        Ok(Sexp::List(items, tail))
    }

    fn is_dot_separator(&self) -> bool {
        // A lone '.' (not part of a number or symbol like '.5' or '...').
        matches!(self.src.get(self.pos), Some(b'.'))
            && self
                .src
                .get(self.pos + 1)
                .map(|c| c.is_ascii_whitespace() || *c == b')' || *c == b'(')
                .unwrap_or(true)
    }

    fn read_atom(&mut self) -> Result<Sexp, CompileError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() || c == b'(' || c == b')' || c == b';' || c == b'\'' {
                break;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("non-utf8 atom"))?;
        if text.is_empty() {
            return Err(self.err("empty atom"));
        }
        // Integer?
        if text
            .bytes()
            .next()
            .map(|c| c.is_ascii_digit() || c == b'-' || c == b'+')
            == Some(true)
            && text.len() > (!text.as_bytes()[0].is_ascii_digit()) as usize
        {
            if text.bytes().skip(1).all(|c| c.is_ascii_digit())
                && (text.as_bytes()[0].is_ascii_digit() || text.len() > 1)
            {
                return text
                    .parse::<i32>()
                    .map(Sexp::Int)
                    .map_err(|_| self.err(format!("integer out of range: {text}")));
            }
            // Float like 1.5, -2.25
            if text.contains('.') && text.parse::<f32>().is_ok() {
                let f: f32 = text.parse().unwrap();
                return Ok(Sexp::Float(f.to_bits()));
            }
        }
        Ok(Sexp::Sym(text.to_ascii_lowercase()))
    }
}

/// Parse a single s-expression from `src`.
///
/// # Errors
///
/// [`CompileError::Read`] on malformed input or when `src` is empty.
pub fn parse_one(src: &str) -> Result<Sexp, CompileError> {
    let mut r = Reader::new(src);
    r.read()?.ok_or_else(|| CompileError::Read {
        line: r.line,
        message: "empty input".into(),
    })
}

/// Parse every top-level s-expression in `src`.
///
/// # Errors
///
/// [`CompileError::Read`] on malformed input.
pub fn parse_all(src: &str) -> Result<Vec<Sexp>, CompileError> {
    let mut r = Reader::new(src);
    let mut out = Vec::new();
    while let Some(s) = r.read()? {
        out.push(s);
    }
    Ok(out)
}

/// Count the non-blank, non-comment-only source lines (Table 3's "lines source
/// code ... without comments").
pub(crate) fn count_code_lines(src: &str) -> usize {
    src.lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with(';')
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms() {
        assert_eq!(parse_one("42").unwrap(), Sexp::Int(42));
        assert_eq!(parse_one("-7").unwrap(), Sexp::Int(-7));
        assert_eq!(parse_one("foo").unwrap(), Sexp::Sym("foo".into()));
        assert_eq!(
            parse_one("FOO").unwrap(),
            Sexp::Sym("foo".into()),
            "case folded"
        );
        assert_eq!(parse_one("1.5").unwrap(), Sexp::Float(1.5f32.to_bits()));
        assert_eq!(parse_one("-").unwrap(), Sexp::Sym("-".into()));
        assert_eq!(parse_one("1+").unwrap(), Sexp::Sym("1+".into()));
    }

    #[test]
    fn lists_and_quote() {
        let s = parse_one("(a (b 1) 'c)").unwrap();
        assert_eq!(s.to_string(), "(a (b 1) (quote c))");
        assert!(parse_one("()").unwrap().is_nil());
    }

    #[test]
    fn dotted_pairs() {
        let s = parse_one("(a . b)").unwrap();
        assert_eq!(s.to_string(), "(a . b)");
        let s = parse_one("(a b . c)").unwrap();
        assert_eq!(s.to_string(), "(a b . c)");
        // dotted nil normalises to proper list
        let s = parse_one("(a . nil)").unwrap();
        assert_eq!(s.to_string(), "(a)");
    }

    #[test]
    fn comments_and_whitespace() {
        let all = parse_all("; header\n(a) ; trailing\n(b)\n").unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_one("(a").is_err());
        assert!(parse_one(")").is_err());
        assert!(parse_one("").is_err());
        assert!(parse_one("( . b)").is_err());
        assert!(parse_one("99999999999999999999").is_err());
    }

    #[test]
    fn line_counting() {
        let src = "; comment only\n\n(defun f () 1)\n  ; another\n(f)\n";
        assert_eq!(count_code_lines(src), 2);
    }

    #[test]
    fn helpers() {
        let s = parse_one("(defun f (x) x)").unwrap();
        assert!(s.is_form("defun"));
        assert!(!s.is_form("setq"));
        assert_eq!(s.as_list().unwrap().len(), 4);
    }
}
