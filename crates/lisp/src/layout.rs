//! Memory map, symbol table, and static (constant) data construction.
//!
//! The simulated address space is laid out as:
//!
//! ```text
//! 0x00000000  reserved (so no valid pointer is 0)
//! globals     one word per global variable, plus runtime cells
//! roots       the GC root table: addresses of every static cell that may hold a
//!             heap pointer (global cells, symbol value/plist cells), 0-terminated
//! symtab      symbol records: [value][plist][fncode][namelen][chars...]
//! consts      quoted structure (pairs, floats) — immutable, never scanned
//! stack       the Lisp stack, grows down from stack_top
//! heap A      copying-collector semispace
//! heap B      copying-collector semispace
//! ```
//!
//! Everything static is built at compile time into the program's initial data
//! image; the heap semispaces start empty.

use std::collections::HashMap;

use tagword::{Tag, TagScheme};

use crate::ast::Unit;
use crate::error::CompileError;
use crate::sexp::Sexp;

/// Header type code for vectors (low two bits clear so headers read as integers
/// under every tag scheme — the GC and the low-tag escape checks rely on it).
pub const VEC_CODE: u32 = 4;
/// Header type code for boxed floats.
pub const FLOAT_CODE: u32 = 8;
/// Bit position of the length field in a vector header.
pub const HDR_LEN_SHIFT: u32 = 10;

/// Make an object header: `(len << 10) | code`.
pub fn header(code: u32, len: u32) -> u32 {
    (len << HDR_LEN_SHIFT) | code
}

/// One interned symbol.
#[derive(Debug, Clone)]
pub struct SymbolInfo {
    /// The symbol's print name.
    pub name: String,
    /// Byte address of its record in the symbol table.
    pub addr: u32,
    /// Its tagged word.
    pub word: u32,
}

/// The complete memory map plus initial data image for one compilation.
#[derive(Debug, Clone)]
#[allow(dead_code)] // the map fields document the address space; tests read them
pub struct Layout {
    /// Tag scheme the image was built for.
    pub scheme: TagScheme,
    /// Base of the globals area.
    pub globals_base: u32,
    /// Number of global cells.
    pub n_globals: u32,
    /// Base of the GC root table.
    pub roots_base: u32,
    /// Base of the symbol table.
    pub symtab_base: u32,
    /// Base of the constant area.
    pub const_base: u32,
    /// Lowest stack address (overflow limit).
    pub stack_low: u32,
    /// Initial stack pointer (stack grows down; exclusive top).
    pub stack_top: u32,
    /// First semispace base.
    pub heap_a: u32,
    /// Second semispace base.
    pub heap_b: u32,
    /// Bytes per semispace.
    pub semi_bytes: u32,
    /// Total simulated memory needed.
    pub mem_bytes: usize,
    /// Interned symbols, `nil` first, `t` second.
    pub symbols: Vec<SymbolInfo>,
    /// Name → index into [`Layout::symbols`].
    pub sym_ids: HashMap<String, usize>,
    /// The tagged `nil`.
    pub nil_word: u32,
    /// The tagged `t`.
    pub t_word: u32,
    /// Tagged word for each entry of the unit's constant table.
    pub const_words: Vec<u32>,
    /// Initial data image.
    pub data: Vec<(u32, u32)>,
}

fn align8(x: u32) -> u32 {
    (x + 7) & !7
}

/// Number of reserved runtime cells after the user globals (GC space flag first).
pub const N_RT_CELLS: u32 = 4;

/// Offset of the value cell in a symbol record.
#[allow(dead_code)] // documents the record layout; the value cell is addressed as offset 0
pub const SYM_VALUE: i32 = 0;
/// Offset of the plist cell in a symbol record.
pub const SYM_PLIST: i32 = 4;
/// Offset of the function-code cell (raw instruction index) in a symbol record.
pub const SYM_FNCODE: i32 = 8;
/// Offset of the name-length word in a symbol record.
pub const SYM_NAMELEN: i32 = 12;
/// Offset of the first name character in a symbol record.
pub const SYM_NAME: i32 = 16;

fn collect_symbols(s: &Sexp, out: &mut Vec<String>, seen: &mut HashMap<String, ()>) {
    match s {
        Sexp::Sym(n) if seen.insert(n.clone(), ()).is_none() => {
            out.push(n.clone());
        }
        Sexp::List(items, tail) => {
            for i in items {
                collect_symbols(i, out, seen);
            }
            if let Some(t) = tail {
                collect_symbols(t, out, seen);
            }
        }
        _ => {}
    }
}

impl Layout {
    /// Build the layout and static image for `unit`.
    ///
    /// # Errors
    ///
    /// [`CompileError::Literal`] when a constant cannot be encoded (fixnum out of
    /// the scheme's range, or the address space exceeded).
    pub fn build(
        unit: &Unit,
        scheme: TagScheme,
        semi_bytes: u32,
        stack_bytes: u32,
    ) -> Result<Layout, CompileError> {
        // --- interning ---------------------------------------------------------
        let mut names = vec!["nil".to_string(), "t".to_string()];
        let mut seen: HashMap<String, ()> = names.iter().map(|n| (n.clone(), ())).collect();
        for c in &unit.consts {
            collect_symbols(c, &mut names, &mut seen);
        }
        for f in &unit.fns {
            if seen.insert(f.name.clone(), ()).is_none() {
                names.push(f.name.clone());
            }
        }

        // --- region sizing ------------------------------------------------------
        let globals_base = 0x40u32;
        let n_globals = unit.globals.len() as u32;
        // Runtime cells (GC space flag, spares) live after the user globals and
        // are *not* in the root table: they hold raw machine words.
        let roots_base = align8(globals_base + 4 * (n_globals + N_RT_CELLS));
        let n_roots = n_globals + 2 * names.len() as u32;
        let symtab_base = align8(roots_base + 4 * (n_roots + 1));

        let mut addr = symtab_base;
        let mut symbols = Vec::with_capacity(names.len());
        let mut sym_ids = HashMap::new();
        for name in &names {
            let rec = addr;
            addr = align8(addr + SYM_NAME as u32 + 4 * name.len() as u32);
            let word = scheme
                .insert(Tag::Symbol, rec)
                .map_err(|e| CompileError::Literal {
                    message: e.to_string(),
                })?;
            sym_ids.insert(name.clone(), symbols.len());
            symbols.push(SymbolInfo {
                name: name.clone(),
                addr: rec,
                word,
            });
        }
        let const_base = align8(addr);
        let nil_word = symbols[0].word;
        let t_word = symbols[1].word;

        // --- constant structure -------------------------------------------------
        let mut data: Vec<(u32, u32)> = Vec::new();
        let mut cursor = const_base;
        let mut const_words = Vec::with_capacity(unit.consts.len());
        for c in &unit.consts {
            let w = build_const(
                c,
                scheme,
                &sym_ids,
                &symbols,
                &mut cursor,
                &mut data,
                nil_word,
                t_word,
            )?;
            const_words.push(w);
        }

        let stack_low = align8(cursor);
        let stack_top = align8(stack_low + stack_bytes);
        let heap_a = stack_top;
        let heap_b = heap_a + semi_bytes;
        let mem_end = heap_b + semi_bytes;
        if u64::from(mem_end) >= 1u64 << scheme.pointer_bits() {
            return Err(CompileError::Literal {
                message: format!(
                    "memory map ({mem_end:#x}) exceeds the {}-bit pointer space of {scheme}",
                    scheme.pointer_bits()
                ),
            });
        }

        // --- symbol records -----------------------------------------------------
        for s in &symbols {
            let value = if s.name == "t" { t_word } else { nil_word };
            data.push((s.addr, value));
            data.push(((s.addr as i32 + SYM_PLIST) as u32, nil_word));
            data.push(((s.addr as i32 + SYM_FNCODE) as u32, 0));
            data.push(((s.addr as i32 + SYM_NAMELEN) as u32, s.name.len() as u32));
            for (i, ch) in s.name.bytes().enumerate() {
                data.push((
                    (s.addr as i32 + SYM_NAME) as u32 + 4 * i as u32,
                    u32::from(ch),
                ));
            }
        }

        // --- globals and root table ----------------------------------------------
        for g in 0..n_globals {
            data.push((globals_base + 4 * g, nil_word));
        }
        let mut raddr = roots_base;
        for g in 0..n_globals {
            data.push((raddr, globals_base + 4 * g));
            raddr += 4;
        }
        for s in &symbols {
            data.push((raddr, s.addr));
            raddr += 4;
            data.push((raddr, (s.addr as i32 + SYM_PLIST) as u32));
            raddr += 4;
        }
        data.push((raddr, 0)); // terminator

        Ok(Layout {
            scheme,
            globals_base,
            n_globals,
            roots_base,
            symtab_base,
            const_base,
            stack_low,
            stack_top,
            heap_a,
            heap_b,
            semi_bytes,
            mem_bytes: mem_end as usize,
            symbols,
            sym_ids,
            nil_word,
            t_word,
            const_words,
            data,
        })
    }

    /// The tagged word for symbol `name`, if interned.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn symbol_word(&self, name: &str) -> Option<u32> {
        self.sym_ids.get(name).map(|&i| self.symbols[i].word)
    }

    /// Byte address of global cell `g`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn global_addr(&self, g: usize) -> u32 {
        self.globals_base + 4 * g as u32
    }

    /// Byte address of reserved runtime cell `i` (see [`N_RT_CELLS`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_RT_CELLS`.
    pub fn rt_cell_addr(&self, i: u32) -> u32 {
        assert!(i < N_RT_CELLS, "runtime cell index out of range");
        self.globals_base + 4 * (self.n_globals + i)
    }
}

/// Recursively build one quoted constant into the constant area, returning its
/// tagged word.
#[allow(clippy::too_many_arguments)]
fn build_const(
    s: &Sexp,
    scheme: TagScheme,
    sym_ids: &HashMap<String, usize>,
    symbols: &[SymbolInfo],
    cursor: &mut u32,
    data: &mut Vec<(u32, u32)>,
    nil_word: u32,
    t_word: u32,
) -> Result<u32, CompileError> {
    match s {
        Sexp::Int(i) => scheme.make_int(*i).map_err(|e| CompileError::Literal {
            message: e.to_string(),
        }),
        Sexp::Float(bits) => {
            let addr = *cursor;
            *cursor = align8(addr + 8);
            data.push((addr, header(FLOAT_CODE, 0)));
            data.push((addr + 4, *bits));
            scheme
                .insert(Tag::Float, addr)
                .map_err(|e| CompileError::Literal {
                    message: e.to_string(),
                })
        }
        Sexp::Sym(n) if n == "nil" => Ok(nil_word),
        Sexp::Sym(n) if n == "t" => Ok(t_word),
        Sexp::Sym(n) => {
            let id = sym_ids.get(n).ok_or_else(|| CompileError::Literal {
                message: format!("unknown symbol {n}"),
            })?;
            Ok(symbols[*id].word)
        }
        Sexp::List(items, tail) => {
            // Build from the tail forward.
            let mut rest = match tail {
                Some(t) => {
                    build_const(t, scheme, sym_ids, symbols, cursor, data, nil_word, t_word)?
                }
                None => nil_word,
            };
            for item in items.iter().rev() {
                let car = build_const(
                    item, scheme, sym_ids, symbols, cursor, data, nil_word, t_word,
                )?;
                let addr = *cursor;
                *cursor = align8(addr + 8);
                data.push((addr, car));
                data.push((addr + 4, rest));
                rest = scheme
                    .insert(Tag::Pair, addr)
                    .map_err(|e| CompileError::Literal {
                        message: e.to_string(),
                    })?;
            }
            Ok(rest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::lower_sources;
    use tagword::ALL_SCHEMES;

    fn layout_for(src: &str, scheme: TagScheme) -> Layout {
        let unit = lower_sources(&[src]).unwrap();
        Layout::build(&unit, scheme, 64 << 10, 16 << 10).unwrap()
    }

    #[test]
    fn nil_and_t_are_first() {
        for scheme in ALL_SCHEMES {
            let l = layout_for("(defun f () 1)", scheme);
            assert_eq!(l.symbols[0].name, "nil");
            assert_eq!(l.symbols[1].name, "t");
            assert_eq!(l.nil_word, l.symbols[0].word);
        }
    }

    #[test]
    fn nil_record_self_car_cdr() {
        // car/cdr of nil are nil: the record's first two cells are nil.
        let l = layout_for("(defun f () 1)", TagScheme::HighTag5);
        let nil_addr = l.symbols[0].addr;
        let value = l.data.iter().find(|(a, _)| *a == nil_addr).unwrap().1;
        let plist = l.data.iter().find(|(a, _)| *a == nil_addr + 4).unwrap().1;
        assert_eq!(value, l.nil_word);
        assert_eq!(plist, l.nil_word);
    }

    #[test]
    fn constants_build_lists() {
        for scheme in ALL_SCHEMES {
            let l = layout_for("(defun f () '(a 5 (b)))", scheme);
            assert_eq!(l.const_words.len(), 1);
            let w = l.const_words[0];
            assert_eq!(scheme.extract(w).exact(), Some(tagword::Tag::Pair));
            // The car of the first pair must be the symbol a.
            let addr = scheme.remove(w);
            let car = l.data.iter().find(|(a, _)| *a == addr).unwrap().1;
            assert_eq!(Some(car), l.symbol_word("a"));
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        for scheme in ALL_SCHEMES {
            let l = layout_for("(defvar g 1) (defun f () '(x y z))", scheme);
            assert!(l.globals_base < l.roots_base);
            assert!(l.roots_base < l.symtab_base);
            assert!(l.symtab_base < l.const_base);
            assert!(l.const_base <= l.stack_low);
            assert!(l.stack_low < l.stack_top);
            assert_eq!(l.stack_top, l.heap_a);
            assert_eq!(l.heap_a + l.semi_bytes, l.heap_b);
            assert_eq!(l.mem_bytes as u32, l.heap_b + l.semi_bytes);
            // every data word lands below the stack
            for (a, _) in &l.data {
                assert!(*a < l.stack_low, "data at {a:#x} in stack/heap");
            }
        }
    }

    #[test]
    fn pointer_space_overflow_detected() {
        let unit = lower_sources(&["(defun f () 1)"]).unwrap();
        let err = Layout::build(&unit, TagScheme::HighTag6, 40 << 20, 16 << 10);
        assert!(err.is_err(), "two 40MB semispaces exceed 26-bit pointers");
    }

    #[test]
    fn symbol_records_are_aligned_and_named() {
        let l = layout_for("(defun frobnicate () 'frobnicate)", TagScheme::LowTag3);
        let s = &l.symbols[l.sym_ids["frobnicate"]];
        assert_eq!(s.addr % 8, 0);
        let len_addr = (s.addr as i32 + SYM_NAMELEN) as u32;
        let len = l.data.iter().find(|(a, _)| *a == len_addr).unwrap().1;
        assert_eq!(len as usize, "frobnicate".len());
        let c0 = l
            .data
            .iter()
            .find(|(a, _)| *a == (s.addr as i32 + SYM_NAME) as u32)
            .unwrap()
            .1;
        assert_eq!(c0, u32::from(b'f'));
    }

    #[test]
    fn root_table_terminated_and_covers_globals() {
        let l = layout_for("(defvar a) (defvar b)", TagScheme::HighTag5);
        // first two roots are the global cells
        let r0 = l.data.iter().find(|(a, _)| *a == l.roots_base).unwrap().1;
        assert_eq!(r0, l.global_addr(0));
        // terminator exists
        let n_roots = 2 + 2 * l.symbols.len() as u32;
        let term_addr = l.roots_base + 4 * n_roots;
        let t = l.data.iter().find(|(a, _)| *a == term_addr).unwrap().1;
        assert_eq!(t, 0);
    }

    #[test]
    fn dotted_constant() {
        let l = layout_for("(defun f () '(a . b))", TagScheme::HighTag5);
        let w = l.const_words[0];
        let addr = TagScheme::HighTag5.remove(w);
        let cdr = l.data.iter().find(|(a, _)| *a == addr + 4).unwrap().1;
        assert_eq!(Some(cdr), l.symbol_word("b"));
    }
}
