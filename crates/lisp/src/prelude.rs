//! The Lisp system library ("the LISP system modules", as the paper calls the
//! PSL code each benchmark links in). Compiled together with every program under
//! the same checking mode, so library list walks are checked exactly like user
//! code.

/// The prelude source.
pub const PRELUDE: &str = r#"
; --- structural equality ------------------------------------------------
(defun equal (a b)
  (cond ((eq a b) t)
        ((and (pairp a) (pairp b))
         (and (equal (car a) (car b)) (equal (cdr a) (cdr b))))
        (t nil)))

; --- list utilities -------------------------------------------------------
(defun append (a b)
  (if (null a) b (cons (car a) (append (cdr a) b))))

(defun reverse (l)
  (let ((r nil))
    (while (pairp l)
      (setq r (cons (car l) r))
      (setq l (cdr l)))
    r))

(defun length (l)
  (let ((n 0))
    (while (pairp l)
      (setq n (add1 n))
      (setq l (cdr l)))
    n))

(defun assq (k al)
  (while (and (pairp al) (not (eq (caar al) k)))
    (setq al (cdr al)))
  (if (pairp al) (car al) nil))

(defun assoc (k al)
  (while (and (pairp al) (not (equal (caar al) k)))
    (setq al (cdr al)))
  (if (pairp al) (car al) nil))

(defun memq (x l)
  (while (and (pairp l) (not (eq (car l) x)))
    (setq l (cdr l)))
  l)

(defun member (x l)
  (while (and (pairp l) (not (equal (car l) x)))
    (setq l (cdr l)))
  l)

(defun nth (l n)
  (while (greaterp n 0)
    (setq l (cdr l))
    (setq n (sub1 n)))
  (car l))

(defun last (l)
  (while (pairp (cdr l))
    (setq l (cdr l)))
  l)

(defun nconc (a b)
  (if (null a) b
    (progn (rplacd (last a) b) a)))

(defun copy-list (l)
  (if (pairp l) (cons (car l) (copy-list (cdr l))) l))

(defun copy-tree (x)
  (if (pairp x) (cons (copy-tree (car x)) (copy-tree (cdr x))) x))

(defun mapcar1 (f l)
  (if (null l) nil
    (cons (funcall f (car l)) (mapcar1 f (cdr l)))))

; --- property lists ----------------------------------------------------------
(defun get (s k)
  (let ((pl (plist s)))
    (while (and (pairp pl) (not (eq (caar pl) k)))
      (setq pl (cdr pl)))
    (if (pairp pl) (cdar pl) nil)))

(defun put (s k v)
  (let ((pl (plist s)) (found nil))
    (while (pairp pl)
      (if (eq (caar pl) k)
          (progn (rplacd (car pl) v) (setq found t) (setq pl nil))
          (setq pl (cdr pl))))
    (if found v
        (progn (setplist s (cons (cons k v) (plist s))) v))))

; --- arithmetic helpers ---------------------------------------------------------
(defun abs (n) (if (lessp n 0) (minus n) n))
(defun max2 (a b) (if (greaterp a b) a b))
(defun min2 (a b) (if (lessp a b) a b))

(defun expt (b n)
  (let ((r 1))
    (while (greaterp n 0)
      (setq r (times r b))
      (setq n (sub1 n)))
    r))

; --- funcall-able definitions of the common primitives ------------------------
; Direct calls compile inline; these give every primitive a function cell so
; (funcall 'car x) works, as in PSL where primitives are real functions.
(defun car (x) (car x))
(defun cdr (x) (cdr x))
(defun cons (a b) (cons a b))
(defun null (x) (null x))
(defun atom (x) (atom x))
(defun pairp (x) (pairp x))
(defun add1 (n) (add1 n))
(defun sub1 (n) (sub1 n))
(defun plus (a b) (plus a b))
(defun difference (a b) (difference a b))
(defun times (a b) (times a b))
(defun lessp (a b) (lessp a b))
(defun greaterp (a b) (greaterp a b))
(defun eq (a b) (eq a b))

; --- printing ---------------------------------------------------------------------
(defun terpri () (wrch 10))

(defun prin1 (x)
  (cond ((intp x) (wrint x))
        ((idp x) (prin-name x))
        ((pairp x) (wrch 40) (prin1 (car x)) (prin1-tail (cdr x)) (wrch 41))
        ((vectorp x) (prin1-vector x))
        ((floatp x) (wrch 35))
        (t (wrch 63))))

(defun prin1-tail (l)
  (cond ((null l) nil)
        ((pairp l) (wrch 32) (prin1 (car l)) (prin1-tail (cdr l)))
        (t (wrch 32) (wrch 46) (wrch 32) (prin1 l))))

(defun prin1-vector (v)
  (wrch 91)
  (let ((n (upbv v)) (i 0))
    (while (lessp i n)
      (if (greaterp i 0) (wrch 32) nil)
      (prin1 (getv v i))
      (setq i (add1 i))))
  (wrch 93))

(defun print (x) (prin1 x) (terpri) x)
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::lower_sources;

    #[test]
    fn prelude_lowers_cleanly() {
        let unit = lower_sources(&[PRELUDE]).expect("prelude compiles");
        assert!(unit.fns.len() >= 20);
        assert!(unit.fns.iter().any(|f| f.name == "equal"));
        assert!(unit.fns.iter().any(|f| f.name == "prin1"));
    }
}
