//! The front end: top-level form processing and lowering to [`Expr`].

use std::collections::HashMap;

use crate::ast::{Expr, FnDef, Prim, Unit};
use crate::error::CompileError;
use crate::sexp::{count_code_lines, parse_all, Sexp};

/// How much run-time checking the compiler emits — the paper's two extremes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckingMode {
    /// No run-time checking: list/vector/arithmetic operations assume their
    /// operands are well-typed (compiler "speed" setting).
    #[default]
    None,
    /// Full run-time checking: every car/cdr checks for a pair, vector accesses
    /// check tag, index type and bounds, and arithmetic is integer-biased generic
    /// (compiler "safety" setting).
    Full,
}

fn form_err(msg: impl Into<String>) -> CompileError {
    CompileError::Form {
        message: msg.into(),
    }
}

struct Scope {
    frames: Vec<HashMap<String, usize>>,
    next_slot: usize,
    max_slots: usize,
}

impl Scope {
    fn new() -> Self {
        Scope {
            frames: vec![HashMap::new()],
            next_slot: 0,
            max_slots: 0,
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self, n_bound: usize) {
        self.frames.pop();
        self.next_slot -= n_bound;
    }

    fn bind(&mut self, name: &str) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        self.frames
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), slot);
        slot
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.frames.iter().rev().find_map(|f| f.get(name)).copied()
    }
}

struct Lower {
    unit: Unit,
    fn_ids: HashMap<String, usize>,
    fn_arity: Vec<usize>,
    global_ids: HashMap<String, usize>,
    const_ids: HashMap<String, usize>,
}

impl Lower {
    fn intern_const(&mut self, s: &Sexp) -> usize {
        let key = s.to_string();
        if let Some(&i) = self.const_ids.get(&key) {
            return i;
        }
        let i = self.unit.consts.len();
        self.unit.consts.push(s.clone());
        self.const_ids.insert(key, i);
        i
    }

    fn global(&mut self, name: &str) -> usize {
        if let Some(&i) = self.global_ids.get(name) {
            return i;
        }
        let i = self.unit.globals.len();
        self.unit.globals.push(name.to_string());
        self.global_ids.insert(name.to_string(), i);
        i
    }

    fn lower_quote(&mut self, s: &Sexp) -> Expr {
        match s {
            Sexp::Int(i) => Expr::Int(*i),
            Sexp::Float(b) => Expr::Float(*b),
            Sexp::Sym(n) if n == "nil" => Expr::Nil,
            Sexp::Sym(n) if n == "t" => Expr::T,
            other => Expr::Const(self.intern_const(other)),
        }
    }

    fn lower_body(&mut self, forms: &[Sexp], sc: &mut Scope) -> Result<Vec<Expr>, CompileError> {
        forms.iter().map(|f| self.lower(f, sc)).collect()
    }

    fn lower(&mut self, s: &Sexp, sc: &mut Scope) -> Result<Expr, CompileError> {
        match s {
            Sexp::Int(i) => Ok(Expr::Int(*i)),
            Sexp::Float(b) => Ok(Expr::Float(*b)),
            Sexp::Sym(n) => match n.as_str() {
                "nil" => Ok(Expr::Nil),
                "t" => Ok(Expr::T),
                _ => {
                    if let Some(slot) = sc.lookup(n) {
                        Ok(Expr::Local(slot))
                    } else if let Some(&g) = self.global_ids.get(n) {
                        Ok(Expr::Global(g))
                    } else {
                        Err(CompileError::UnknownVariable { name: n.clone() })
                    }
                }
            },
            Sexp::List(items, tail) => {
                if tail.is_some() {
                    return Err(form_err(format!("dotted form in code: {s}")));
                }
                let head = items
                    .first()
                    .and_then(Sexp::as_sym)
                    .ok_or_else(|| form_err(format!("call head must be a symbol: {s}")))?
                    .to_string();
                let args = &items[1..];
                self.lower_form(&head, args, s, sc)
            }
        }
    }

    fn lower_form(
        &mut self,
        head: &str,
        args: &[Sexp],
        whole: &Sexp,
        sc: &mut Scope,
    ) -> Result<Expr, CompileError> {
        match head {
            "quote" => {
                if args.len() != 1 {
                    return Err(form_err(format!("quote wants 1 arg: {whole}")));
                }
                Ok(self.lower_quote(&args[0]))
            }
            "if" => {
                if args.len() < 2 || args.len() > 3 {
                    return Err(form_err(format!("if wants 2-3 args: {whole}")));
                }
                let c = self.lower(&args[0], sc)?;
                let t = self.lower(&args[1], sc)?;
                let e = if let Some(e) = args.get(2) {
                    self.lower(e, sc)?
                } else {
                    Expr::Nil
                };
                Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
            }
            "when" | "unless" => {
                if args.is_empty() {
                    return Err(form_err(format!("{head} wants a condition: {whole}")));
                }
                let c = self.lower(&args[0], sc)?;
                let body = Expr::Progn(self.lower_body(&args[1..], sc)?);
                let (t, e) = if head == "when" {
                    (body, Expr::Nil)
                } else {
                    (Expr::Nil, body)
                };
                Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
            }
            "cond" => {
                // (cond (c e...) ... ) => nested ifs
                let mut out = Expr::Nil;
                for clause in args.iter().rev() {
                    let cl = clause
                        .as_list()
                        .ok_or_else(|| form_err(format!("bad cond clause: {clause}")))?;
                    if cl.is_empty() {
                        return Err(form_err(format!("empty cond clause: {whole}")));
                    }
                    let is_default = cl[0].as_sym() == Some("t");
                    let body = if cl.len() == 1 {
                        None
                    } else {
                        Some(Expr::Progn(self.lower_body(&cl[1..], sc)?))
                    };
                    if is_default {
                        out = body.unwrap_or(Expr::T);
                    } else {
                        let c = self.lower(&cl[0], sc)?;
                        out = match body {
                            Some(b) => Expr::If(Box::new(c), Box::new(b), Box::new(out)),
                            // (cond (x) ...): value of the test itself
                            None => Expr::Or(vec![c, out]),
                        };
                    }
                }
                Ok(out)
            }
            "progn" | "prog2" => {
                let body = self.lower_body(args, sc)?;
                Ok(Expr::Progn(body))
            }
            "let" | "let*" => {
                let binds = args
                    .first()
                    .and_then(Sexp::as_list)
                    .ok_or_else(|| form_err(format!("{head} wants a binding list: {whole}")))?;
                let sequential = head == "let*";
                sc.push();
                let mut bound = 0;
                let mut inits = Vec::new();
                if sequential {
                    // let*: each init sees the previous bindings.
                    for b in binds {
                        let (name, init) = lower_binding(self, b, sc)?;
                        let slot = sc.bind(&name);
                        bound += 1;
                        inits.push(Expr::SetLocal(slot, Box::new(init)));
                    }
                } else {
                    // let: every init is evaluated in the outer scope (the new
                    // frame is empty while lowering, so lookups resolve outward),
                    // then all bindings are installed. Slots are disjoint from the
                    // outer ones, so the stores cannot disturb the inits.
                    let mut pending = Vec::new();
                    for b in binds {
                        pending.push(lower_binding(self, b, sc)?);
                    }
                    for (name, init) in pending {
                        let slot = sc.bind(&name);
                        bound += 1;
                        inits.push(Expr::SetLocal(slot, Box::new(init)));
                    }
                }
                let mut body = self.lower_body(&args[1..], sc)?;
                sc.pop(bound);
                let mut seq = inits;
                seq.append(&mut body);
                Ok(Expr::Progn(seq))
            }
            "setq" => {
                if args.len() != 2 {
                    return Err(form_err(format!("setq wants 2 args: {whole}")));
                }
                let name = args[0]
                    .as_sym()
                    .ok_or_else(|| form_err(format!("setq of non-symbol: {whole}")))?;
                let v = self.lower(&args[1], sc)?;
                if let Some(slot) = sc.lookup(name) {
                    Ok(Expr::SetLocal(slot, Box::new(v)))
                } else if let Some(&g) = self.global_ids.get(name) {
                    Ok(Expr::SetGlobal(g, Box::new(v)))
                } else {
                    Err(CompileError::UnknownVariable {
                        name: name.to_string(),
                    })
                }
            }
            "while" => {
                if args.is_empty() {
                    return Err(form_err(format!("while wants a condition: {whole}")));
                }
                let c = self.lower(&args[0], sc)?;
                let body = self.lower_body(&args[1..], sc)?;
                Ok(Expr::While(Box::new(c), body))
            }
            "and" => Ok(Expr::And(self.lower_body(args, sc)?)),
            "or" => Ok(Expr::Or(self.lower_body(args, sc)?)),
            "list" => {
                // (list a b c) => (cons a (cons b (cons c nil)))
                let mut out = Expr::Nil;
                let lowered: Result<Vec<_>, _> = args.iter().map(|a| self.lower(a, sc)).collect();
                for e in lowered?.into_iter().rev() {
                    out = Expr::Prim(Prim::Cons, vec![e, out]);
                }
                Ok(out)
            }
            "funcall" | "apply1" => {
                if args.is_empty() {
                    return Err(form_err(format!("funcall wants a function: {whole}")));
                }
                let f = self.lower(&args[0], sc)?;
                let rest = self.lower_body(&args[1..], sc)?;
                if rest.len() > 6 {
                    return Err(CompileError::TooManyParams {
                        name: "funcall".into(),
                    });
                }
                Ok(Expr::Funcall(Box::new(f), rest))
            }
            "function" => {
                // #'name / (function name): the symbol, used with funcall.
                let n = args
                    .first()
                    .and_then(Sexp::as_sym)
                    .ok_or_else(|| form_err(format!("function wants a symbol: {whole}")))?;
                Ok(self.lower_quote(&Sexp::Sym(n.to_string())))
            }
            // c[ad]{2,3}r sugar
            _ if is_cxr(head) => {
                if args.len() != 1 {
                    return Err(form_err(format!("{head} wants 1 arg: {whole}")));
                }
                let mut e = self.lower(&args[0], sc)?;
                for c in head[1..head.len() - 1].chars().rev() {
                    let p = if c == 'a' { Prim::Car } else { Prim::Cdr };
                    e = Expr::Prim(p, vec![e]);
                }
                Ok(e)
            }
            _ => {
                // primitive?
                if let Some(p) = Prim::by_name(head) {
                    let lowered = self.lower_body(args, sc)?;
                    if lowered.len() != p.arity() {
                        return Err(CompileError::Arity {
                            name: head.to_string(),
                            expected: p.arity(),
                            got: lowered.len(),
                        });
                    }
                    return Ok(Expr::Prim(p, lowered));
                }
                // known function?
                if let Some(&id) = self.fn_ids.get(head) {
                    let lowered = self.lower_body(args, sc)?;
                    if lowered.len() != self.fn_arity[id] {
                        return Err(CompileError::Arity {
                            name: head.to_string(),
                            expected: self.fn_arity[id],
                            got: lowered.len(),
                        });
                    }
                    return Ok(Expr::Call(id, lowered));
                }
                Err(CompileError::UnknownFunction {
                    name: head.to_string(),
                })
            }
        }
    }
}

fn lower_binding(lo: &mut Lower, b: &Sexp, sc: &mut Scope) -> Result<(String, Expr), CompileError> {
    match b {
        Sexp::Sym(n) => Ok((n.clone(), Expr::Nil)),
        Sexp::List(bi, None) if bi.len() <= 2 => {
            let n = bi[0]
                .as_sym()
                .ok_or_else(|| form_err(format!("bad binding: {b}")))?;
            let init = if let Some(e) = bi.get(1) {
                lo.lower(e, sc)?
            } else {
                Expr::Nil
            };
            Ok((n.to_string(), init))
        }
        _ => Err(form_err(format!("bad binding: {b}"))),
    }
}

fn is_cxr(name: &str) -> bool {
    name.len() >= 4
        && name.len() <= 6
        && name.starts_with('c')
        && name.ends_with('r')
        && name[1..name.len() - 1]
            .bytes()
            .all(|c| c == b'a' || c == b'd')
}

/// Parse and lower a set of sources (prelude first, then the program) into a
/// [`Unit`].
///
/// # Errors
///
/// Reader errors, unknown variables/functions, malformed forms, arity mismatches.
pub fn lower_sources(sources: &[&str]) -> Result<Unit, CompileError> {
    let mut all_forms = Vec::new();
    let mut lines = 0;
    for src in sources {
        lines += count_code_lines(src);
        all_forms.extend(parse_all(src)?);
    }

    let mut lo = Lower {
        unit: Unit {
            source_lines: lines,
            ..Unit::default()
        },
        fn_ids: HashMap::new(),
        fn_arity: Vec::new(),
        global_ids: HashMap::new(),
        const_ids: HashMap::new(),
    };

    // Pass 1: function signatures and globals (so forward references work).
    for form in &all_forms {
        if let Some(items) = form.as_list() {
            match items.first().and_then(Sexp::as_sym) {
                Some("defun" | "de") => {
                    let name = items
                        .get(1)
                        .and_then(Sexp::as_sym)
                        .ok_or_else(|| form_err(format!("bad defun: {form}")))?;
                    let params = items
                        .get(2)
                        .map(|p| {
                            if p.is_nil() {
                                Some(&[][..])
                            } else {
                                p.as_list()
                            }
                        })
                        .ok_or_else(|| form_err(format!("defun wants a lambda list: {form}")))?
                        .ok_or_else(|| form_err(format!("bad lambda list: {form}")))?;
                    if params.len() > 6 {
                        return Err(CompileError::TooManyParams {
                            name: name.to_string(),
                        });
                    }
                    if lo.fn_ids.contains_key(name) {
                        return Err(form_err(format!("duplicate defun: {name}")));
                    }
                    let id = lo.unit.fns.len();
                    lo.fn_ids.insert(name.to_string(), id);
                    lo.fn_arity.push(params.len());
                    // Placeholder; body filled in pass 2.
                    lo.unit.fns.push(FnDef {
                        name: name.to_string(),
                        params: params.len(),
                        nslots: params.len(),
                        body: Vec::new(),
                    });
                }
                Some("defvar" | "global") => {
                    let name = items
                        .get(1)
                        .and_then(Sexp::as_sym)
                        .ok_or_else(|| form_err(format!("bad defvar: {form}")))?;
                    lo.global(name);
                }
                _ => {}
            }
        }
    }

    // Pass 2: lower bodies and top-level forms.
    for form in &all_forms {
        let items = match form.as_list() {
            Some(i) => i,
            None => {
                // A bare top-level atom evaluates for effect; lower it.
                let mut sc = Scope::new();
                let e = lo.lower(form, &mut sc)?;
                lo.unit.top.push(e);
                continue;
            }
        };
        match items.first().and_then(Sexp::as_sym) {
            Some("defun" | "de") => {
                let name = items[1].as_sym().expect("checked in pass 1").to_string();
                let params: Vec<String> = if items[2].is_nil() {
                    vec![]
                } else {
                    items[2]
                        .as_list()
                        .expect("checked in pass 1")
                        .iter()
                        .map(|p| {
                            p.as_sym()
                                .map(str::to_string)
                                .ok_or_else(|| form_err(format!("bad parameter in {name}")))
                        })
                        .collect::<Result<_, _>>()?
                };
                let mut sc = Scope::new();
                for p in &params {
                    sc.bind(p);
                }
                let body = lo.lower_body(&items[3..], &mut sc)?;
                let id = lo.fn_ids[&name];
                lo.unit.fns[id].body = body;
                lo.unit.fns[id].nslots = sc.max_slots;
            }
            Some("defvar" | "global") => {
                let name = items[1].as_sym().expect("checked in pass 1");
                let g = lo.global_ids[name];
                let init = if let Some(e) = items.get(2) {
                    let mut sc = Scope::new();
                    lo.lower(e, &mut sc)?
                } else {
                    Expr::Nil
                };
                lo.unit.top.push(Expr::SetGlobal(g, Box::new(init)));
            }
            _ => {
                let mut sc = Scope::new();
                let e = lo.lower(form, &mut sc)?;
                if sc.max_slots > 0 {
                    return Err(form_err(format!(
                        "top-level form binds locals (wrap it in a defun): {form}"
                    )));
                }
                lo.unit.top.push(e);
            }
        }
    }

    Ok(lo.unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower1(src: &str) -> Unit {
        lower_sources(&[src]).expect("lowers")
    }

    #[test]
    fn defun_and_call() {
        let u = lower1("(defun f (x) (plus x 1)) (f 3)");
        assert_eq!(u.fns.len(), 1);
        assert_eq!(u.fns[0].params, 1);
        assert_eq!(u.top.len(), 1);
        assert!(matches!(u.top[0], Expr::Call(0, _)));
    }

    #[test]
    fn forward_references_work() {
        let u = lower1("(defun f (x) (g x)) (defun g (x) x)");
        assert!(matches!(u.fns[0].body[0], Expr::Call(1, _)));
    }

    #[test]
    fn cond_lowers_to_ifs() {
        let u = lower1("(defun f (x) (cond ((null x) 1) ((atom x) 2) (t 3)))");
        assert!(matches!(u.fns[0].body[0], Expr::If(..)));
    }

    #[test]
    fn let_allocates_slots() {
        let u = lower1("(defun f (x) (let ((a 1) (b 2)) (plus a b)))");
        assert_eq!(u.fns[0].nslots, 3); // x, a, b
    }

    #[test]
    fn nested_lets_reuse_slots() {
        let u = lower1("(defun f () (progn (let ((a 1)) a) (let ((b 2)) b)))");
        assert_eq!(u.fns[0].nslots, 1, "sibling lets share the slot");
    }

    #[test]
    fn cxr_sugar() {
        let u = lower1("(defun f (x) (cadr x))");
        match &u.fns[0].body[0] {
            Expr::Prim(Prim::Car, args) => {
                assert!(matches!(args[0], Expr::Prim(Prim::Cdr, _)))
            }
            other => panic!("expected car(cdr(x)), got {other:?}"),
        }
    }

    #[test]
    fn quote_and_constants_dedupe() {
        let u = lower1("(defun f () (cons '(a b) '(a b)))");
        assert_eq!(u.consts.len(), 1);
    }

    #[test]
    fn quoted_atoms_fold() {
        let u = lower1("(defun f () (cons '5 'nil))");
        match &u.fns[0].body[0] {
            Expr::Prim(Prim::Cons, args) => {
                assert_eq!(args[0], Expr::Int(5));
                assert_eq!(args[1], Expr::Nil);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn globals() {
        let u = lower1("(defvar counter 0) (defun bump () (setq counter (add1 counter)))");
        assert_eq!(u.globals, vec!["counter".to_string()]);
        assert!(matches!(u.fns[0].body[0], Expr::SetGlobal(0, _)));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            lower_sources(&["(defun f (x) y)"]),
            Err(CompileError::UnknownVariable { .. })
        ));
        assert!(matches!(
            lower_sources(&["(nosuch 1)"]),
            Err(CompileError::UnknownFunction { .. })
        ));
        assert!(matches!(
            lower_sources(&["(cons 1)"]),
            Err(CompileError::Arity { .. })
        ));
        assert!(matches!(
            lower_sources(&["(defun f (a b c d e f g) 1)"]),
            Err(CompileError::TooManyParams { .. })
        ));
        assert!(lower_sources(&["(defun f () 1) (defun f () 2)"]).is_err());
    }

    #[test]
    fn while_and_list() {
        let u = lower1("(defvar n 0) (defun f () (while (lessp n 10) (setq n (add1 n))))");
        assert!(matches!(u.fns[0].body[0], Expr::While(..)));
        let u = lower1("(defun g () (list 1 2))");
        assert!(matches!(u.fns[0].body[0], Expr::Prim(Prim::Cons, _)));
    }

    #[test]
    fn line_count_recorded() {
        let u = lower_sources(&["(defun f () 1)\n", "; c\n(f)\n"]).unwrap();
        assert_eq!(u.source_lines, 2);
    }
}
