//! The core expression language the front end lowers source into.

use crate::sexp::Sexp;

/// Built-in primitive operations, compiled inline (or to short runtime calls).
///
/// The names follow Portable Standard Lisp: `plus`/`difference`/`times`/
/// `quotient`, `lessp`/`greaterp`, `idp` for symbols, `upbv` for vector upper
/// bound. The front end also accepts the usual operator aliases (`+`, `-`, `<`…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Prim {
    // lists
    Cons,
    Car,
    Cdr,
    Rplaca,
    Rplacd,
    // predicates
    Eq,
    Null,
    Atom,
    Pairp,
    Intp,
    Idp,
    Vectorp,
    Floatp,
    // integer (generic under full checking) arithmetic
    Plus,
    Difference,
    Times,
    Quotient,
    Remainder,
    Add1,
    Sub1,
    Minus,
    Lessp,
    Greaterp,
    Leq,
    Geq,
    NumEq,
    // vectors
    Mkvect,
    Getv,
    Putv,
    Upbv,
    // symbols
    Plist,
    Setplist,
    // output
    Wrch,
    Wrint,
    PrinName,
    // runtime services
    Reclaim,
    // float-specific operators (PSL-style type-specific arithmetic)
    FPlus,
    FDifference,
    FTimes,
    FQuotient,
    FLessp,
    FloatFromInt,
}

impl Prim {
    /// Number of arguments the primitive takes.
    pub fn arity(self) -> usize {
        use Prim::*;
        match self {
            Reclaim => 0,
            Car | Cdr | Null | Atom | Pairp | Intp | Idp | Vectorp | Floatp | Add1 | Sub1
            | Minus | Mkvect | Upbv | Plist | Wrch | Wrint | PrinName | FloatFromInt => 1,
            Cons | Rplaca | Rplacd | Eq | Plus | Difference | Times | Quotient | Remainder
            | Lessp | Greaterp | Leq | Geq | NumEq | Getv | Setplist | FPlus | FDifference
            | FTimes | FQuotient | FLessp => 2,
            Putv => 3,
        }
    }

    /// Look a primitive up by (PSL or alias) name.
    pub fn by_name(name: &str) -> Option<Prim> {
        use Prim::*;
        Some(match name {
            "cons" => Cons,
            "car" => Car,
            "cdr" => Cdr,
            "rplaca" => Rplaca,
            "rplacd" => Rplacd,
            "eq" => Eq,
            "null" | "not" => Null,
            "atom" => Atom,
            "pairp" | "consp" => Pairp,
            "intp" | "fixp" | "numberp" => Intp,
            "idp" | "symbolp" => Idp,
            "vectorp" => Vectorp,
            "floatp" => Floatp,
            "plus" | "plus2" | "+" => Plus,
            "difference" | "-" => Difference,
            "times" | "times2" | "*" => Times,
            "quotient" | "/" => Quotient,
            "remainder" | "rem" => Remainder,
            "add1" | "1+" => Add1,
            "sub1" | "1-" => Sub1,
            "minus" => Minus,
            "lessp" | "<" => Lessp,
            "greaterp" | ">" => Greaterp,
            "leq" | "<=" => Leq,
            "geq" | ">=" => Geq,
            "eqn" | "=" => NumEq,
            "mkvect" => Mkvect,
            "getv" => Getv,
            "putv" => Putv,
            "upbv" => Upbv,
            "plist" => Plist,
            "setplist" => Setplist,
            "wrch" => Wrch,
            "wrint" => Wrint,
            "prin-name" => PrinName,
            "reclaim" => Reclaim,
            "fplus" => FPlus,
            "fdifference" => FDifference,
            "ftimes" => FTimes,
            "fquotient" => FQuotient,
            "flessp" => FLessp,
            "float" => FloatFromInt,
            _ => return None,
        })
    }

    /// Whether the primitive is one of the (possibly generic) arithmetic ops that
    /// full run-time checking turns into integer-biased generic sequences.
    #[allow(dead_code)] // part of the AST API surface, exercised by tests
    pub fn is_generic_arith(self) -> bool {
        use Prim::*;
        matches!(
            self,
            Plus | Difference
                | Times
                | Quotient
                | Remainder
                | Add1
                | Sub1
                | Minus
                | Lessp
                | Greaterp
                | Leq
                | Geq
                | NumEq
        )
    }
}

/// A reference to a compiled function (index into the unit's function table).
pub type FnId = usize;

/// The core expression language.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The constant `nil`.
    Nil,
    /// The constant `t`.
    T,
    /// A fixnum literal.
    Int(i32),
    /// A float literal (f32 bits), boxed at run time.
    Float(u32),
    /// Quoted structure or a symbol literal: index into the unit's constant table.
    Const(usize),
    /// A local variable (frame slot).
    Local(usize),
    /// A global variable (cell index in the globals area).
    Global(usize),
    /// Assign a local; value is the assigned value.
    SetLocal(usize, Box<Expr>),
    /// Assign a global; value is the assigned value.
    SetGlobal(usize, Box<Expr>),
    /// Two- or three-armed conditional (the else arm defaults to `nil`).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Sequence; value of the last form (empty = `nil`).
    Progn(Vec<Expr>),
    /// Loop while the condition is non-nil; value `nil`.
    While(Box<Expr>, Vec<Expr>),
    /// Call a known function.
    Call(FnId, Vec<Expr>),
    /// Call through a symbol's function cell.
    Funcall(Box<Expr>, Vec<Expr>),
    /// A primitive application.
    Prim(Prim, Vec<Expr>),
    /// Short-circuit and; value of last form or `nil`.
    And(Vec<Expr>),
    /// Short-circuit or; first non-nil value or `nil`.
    Or(Vec<Expr>),
}

impl Expr {
    /// Whether evaluation is a single constant/register/frame access with no side
    /// effects and no allocation — eligible for deferred materialisation in
    /// argument lists.
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            Expr::Nil | Expr::T | Expr::Int(_) | Expr::Const(_) | Expr::Local(_) | Expr::Global(_)
        )
    }
}

/// A compiled-to-AST function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name (also its symbol).
    pub name: String,
    /// Number of parameters (≤ 6).
    pub params: usize,
    /// Total frame slots (params + let locals).
    pub nslots: usize,
    /// Body forms.
    pub body: Vec<Expr>,
}

/// A whole lowered compilation unit.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// All functions, in definition order (prelude first).
    pub fns: Vec<FnDef>,
    /// Global variable names, in cell order.
    pub globals: Vec<String>,
    /// Constant table: quoted structure and symbol literals.
    pub consts: Vec<Sexp>,
    /// Top-level forms, run in order by the generated `main`.
    pub top: Vec<Expr>,
    /// Source lines (comments and blanks excluded), for Table 3.
    pub source_lines: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_lookup_and_aliases() {
        assert_eq!(Prim::by_name("plus"), Some(Prim::Plus));
        assert_eq!(Prim::by_name("+"), Some(Prim::Plus));
        assert_eq!(Prim::by_name("consp"), Some(Prim::Pairp));
        assert_eq!(Prim::by_name("no-such"), None);
    }

    #[test]
    fn arities() {
        assert_eq!(Prim::Cons.arity(), 2);
        assert_eq!(Prim::Putv.arity(), 3);
        assert_eq!(Prim::Reclaim.arity(), 0);
        assert_eq!(Prim::Car.arity(), 1);
    }

    #[test]
    fn generic_arith_classification() {
        assert!(Prim::Plus.is_generic_arith());
        assert!(Prim::Lessp.is_generic_arith());
        assert!(!Prim::Cons.is_generic_arith());
        assert!(
            !Prim::FPlus.is_generic_arith(),
            "float ops are type-specific"
        );
    }

    #[test]
    fn simplicity() {
        assert!(Expr::Int(3).is_simple());
        assert!(Expr::Local(0).is_simple());
        assert!(!Expr::Prim(Prim::Car, vec![Expr::Local(0)]).is_simple());
        assert!(!Expr::Float(0).is_simple(), "floats allocate");
    }
}
