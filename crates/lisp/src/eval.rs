//! A tree-walking reference evaluator over the lowered AST.
//!
//! The evaluator computes a program's *observable behaviour* — its printed
//! output and exit code — directly from [`crate::ast`], independent of the
//! code generator, the tag scheme, and the simulator. That independence is
//! what makes it usable as a differential oracle: if a compiled program's
//! simulated output under some scheme × checking × hardware point disagrees
//! with the evaluator, one of the two is wrong, and the evaluator is by far
//! the simpler artifact.
//!
//! Alongside the result it keeps an [`OpCensus`]: dynamic counts of the
//! operations whose full-checking compilations carry tag-checking cycles.
//! The census is bucketed the way [`mipsx::CheckCat`] buckets checking
//! cycles (list / vector / arithmetic), split into counts that are *certainly*
//! checked on every hardware level and counts that may be checked depending
//! on the hardware (parallel checked loads and generic-arithmetic units make
//! some checks free). A differential harness can therefore bound the
//! simulator's per-category checking cycles from both sides without knowing
//! which hardware ran.
//!
//! Error semantics mirror the *full checking* mode of the compiled system:
//! `car` of a non-pair exits with [`exit_code::ERR_CAR`], a bad vector index
//! with [`exit_code::ERR_BOUNDS`], fixnum overflow on add/sub with
//! [`exit_code::ERR_OVERFLOW`], and so on. Programs that trigger no run-time
//! errors behave identically under either checking mode, which is what lets
//! one evaluation stand as the oracle for both.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::ast::{Expr, Prim, Unit};
use crate::error::CompileError;
use crate::front;
use crate::prelude::PRELUDE;
use crate::runtime::exit_code;
use crate::sexp::Sexp;

/// Knobs for one evaluation.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Fixnum width in bits (tag-scheme dependent: 27 for HighTag5, 26 for
    /// HighTag6, 30 for the low-tag schemes). Add/sub results outside
    /// `[-2^(bits-1), 2^(bits-1))` exit with [`exit_code::ERR_OVERFLOW`],
    /// exactly as the checked compiled code does.
    pub int_bits: u32,
    /// Evaluation step budget; exceeding it is an [`EvalError::Fuel`] — a
    /// harness error, not a program trap, because the compiled counterpart
    /// gets its own (cycle) budget.
    pub fuel: u64,
    /// Maximum Lisp call depth; exceeding it is [`EvalError::Depth`]. The
    /// compiled system traps on stack overflow at a configuration-dependent
    /// depth, so the two limits are deliberately not conflated.
    pub max_depth: usize,
    /// Prepend the standard prelude (as [`crate::compile`] does by default).
    pub include_prelude: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            int_bits: 27,
            fuel: 2_000_000_000,
            max_depth: 100_000,
            include_prelude: true,
        }
    }
}

impl EvalOptions {
    /// Options matching `scheme`'s fixnum range.
    pub fn for_scheme(scheme: tagword::TagScheme) -> EvalOptions {
        EvalOptions {
            int_bits: scheme.int_bits(),
            ..EvalOptions::default()
        }
    }
}

/// Dynamic counts of operations that compile to tag-checking work, bucketed
/// like [`mipsx::CheckCat`].
///
/// For each category the `*_certain` count covers operations whose
/// full-checking compilation carries at least one cycle annotated as a
/// checking cycle on *every* hardware level, while the `*_all` count covers
/// every operation that can contribute checking cycles on *some* level. A
/// measured [`mipsx::Stats`] under full checking must therefore satisfy
/// `certain ≤ checking_cycles ≤ K · all` for a per-op cycle bound `K`, and
/// `all == 0` forces `checking_cycles == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// List-category ops checked on every hardware level (`funcall` symbol +
    /// function-cell checks, `prin-name` symbol checks).
    pub list_certain: u64,
    /// All list-category ops (`car`/`cdr`/`rplaca`/`rplacd`, `plist`/
    /// `setplist`, plus the certain ones) — parallel checked loads make the
    /// structure-access checks free, so they are not certain.
    pub list_all: u64,
    /// Vector ops checked on every hardware level (`mkvect` size checks,
    /// `getv`/`putv` index and bounds checks).
    pub vector_certain: u64,
    /// All vector ops (adds `upbv`, whose only check rides the header load).
    pub vector_all: u64,
    /// Arithmetic ops checked on every hardware level: division-by-zero
    /// guards on `quotient`/`remainder`, `wrch`/`wrint`/`float` argument
    /// checks, and `times`/comparison operand checks when at least one
    /// operand is not an integer literal (literal operand checks are elided).
    pub arith_certain: u64,
    /// The add/sub family (`plus`/`difference`/`add1`/`sub1`/`minus`):
    /// overflow-checked on stock hardware, but free on a generic-arithmetic
    /// unit, so certain only when the hardware lacks one.
    pub arith_addsub: u64,
    /// All (possibly generic) arithmetic ops, including `wrch`/`wrint`/
    /// `float` and both-literal `times`/comparisons.
    pub arith_all: u64,
    /// Float-specific ops (`fplus` … `flessp`): their FPU instructions are
    /// annotated as generic-arithmetic cycles even under `CheckingMode::None`,
    /// so a nonzero count voids the "no checking ⇒ zero checking cycles"
    /// implication.
    pub float_ops: u64,
    /// Function calls (known calls and funcalls) — informational.
    pub calls: u64,
    /// Total primitive applications — informational.
    pub prim_ops: u64,
}

/// The observable result of one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Exit code: [`exit_code::OK`] or the `ERR_*` trap the program hit.
    pub halt_code: i32,
    /// Everything the program printed before halting.
    pub output: String,
    /// The operation census (up to and including the trapping operation).
    pub census: OpCensus,
}

/// Why an evaluation could not produce an [`EvalOutcome`].
///
/// Program-level traps (wrong-type `car`, overflow, …) are *not* errors —
/// they are outcomes with the matching `ERR_*` halt code. These variants
/// cover harness-level failures only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The source failed to lower.
    Compile(CompileError),
    /// The step budget ran out.
    Fuel,
    /// The call-depth limit was exceeded.
    Depth,
    /// The program left the domain the evaluator models faithfully (e.g. a
    /// `times` product outside the fixnum range, which compiled code does
    /// not check and silently corrupts).
    Unsupported(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Compile(e) => write!(f, "compile: {e}"),
            EvalError::Fuel => write!(f, "evaluation step budget exhausted"),
            EvalError::Depth => write!(f, "evaluation call depth exceeded"),
            EvalError::Unsupported(why) => write!(f, "outside the modeled domain: {why}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `source` (with the prelude unless disabled) and return its
/// observable behaviour plus op census.
///
/// # Errors
///
/// [`EvalError::Compile`] when lowering fails, and the harness-level limits
/// described on [`EvalError`].
pub fn eval_source(source: &str, opts: &EvalOptions) -> Result<EvalOutcome, EvalError> {
    let sources: Vec<&str> = if opts.include_prelude {
        vec![PRELUDE, source]
    } else {
        vec![source]
    };
    let unit = front::lower_sources(&sources).map_err(EvalError::Compile)?;
    eval_unit(&unit, opts)
}

/// Evaluate an already-lowered [`Unit`].
///
/// # Errors
///
/// The harness-level limits described on [`EvalError`].
pub fn eval_unit(unit: &Unit, opts: &EvalOptions) -> Result<EvalOutcome, EvalError> {
    let mut interp = Interp::new(unit, opts);
    let mut frame = Vec::new();
    for form in &unit.top {
        match interp.eval(form, &mut frame) {
            Ok(_) => {}
            Err(Stop::Trap(code)) => {
                return Ok(EvalOutcome {
                    halt_code: code,
                    output: interp.output,
                    census: interp.census,
                })
            }
            Err(Stop::Fuel) => return Err(EvalError::Fuel),
            Err(Stop::Depth) => return Err(EvalError::Depth),
            Err(Stop::Bad(why)) => return Err(EvalError::Unsupported(why)),
        }
    }
    Ok(EvalOutcome {
        halt_code: exit_code::OK,
        output: interp.output,
        census: interp.census,
    })
}

/// A run-time Lisp value. Heap objects (pairs, vectors, floats) have
/// reference identity, exactly like their tagged-pointer counterparts, so
/// `eq` means pointer equality for them and value equality for immediates.
#[derive(Debug, Clone)]
enum Value {
    Nil,
    True,
    Int(i32),
    Float(Rc<u32>),
    Sym(Rc<str>),
    Pair(Rc<RefCell<(Value, Value)>>),
    Vector(Rc<RefCell<Vec<Value>>>),
}

impl Value {
    fn truthy(&self) -> bool {
        !matches!(self, Value::Nil)
    }

    /// The print name when the value is a symbol (`nil` and `t` are interned
    /// symbols in the runtime, so they answer here too).
    fn symbol_name(&self) -> Option<&str> {
        match self {
            Value::Nil => Some("nil"),
            Value::True => Some("t"),
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }
}

fn eq_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Nil, Value::Nil) | (Value::True, Value::True) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Sym(x), Value::Sym(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => Rc::ptr_eq(x, y),
        (Value::Pair(x), Value::Pair(y)) => Rc::ptr_eq(x, y),
        (Value::Vector(x), Value::Vector(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

/// Why evaluation of an expression stopped early.
enum Stop {
    /// A program-level trap: carries the exit code the compiled program
    /// halts with.
    Trap(i32),
    Fuel,
    Depth,
    Bad(String),
}

type R<T> = Result<T, Stop>;

/// Largest vector the evaluator will allocate — far above anything the
/// simulated heaps can hold, so hitting it means the program is outside the
/// modeled domain rather than a legitimate big allocation.
const MAX_VECTOR: i32 = 1 << 22;

struct Interp<'u> {
    unit: &'u Unit,
    fn_by_name: HashMap<&'u str, usize>,
    globals: Vec<Value>,
    consts: Vec<Value>,
    plists: HashMap<String, Value>,
    output: String,
    census: OpCensus,
    fuel: u64,
    depth: usize,
    max_depth: usize,
    max_int: i64,
    min_int: i64,
}

impl<'u> Interp<'u> {
    fn new(unit: &'u Unit, opts: &EvalOptions) -> Interp<'u> {
        let fn_by_name = unit
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        // Constants materialise once, before `main` runs, and every reference
        // to the same table index shares the object — matching the static
        // constant area the compiled program addresses.
        let consts = unit.consts.iter().map(sexp_to_value).collect();
        Interp {
            unit,
            fn_by_name,
            globals: vec![Value::Nil; unit.globals.len()],
            consts,
            plists: HashMap::new(),
            output: String::new(),
            census: OpCensus::default(),
            fuel: opts.fuel,
            depth: 0,
            max_depth: opts.max_depth,
            max_int: (1i64 << (opts.int_bits - 1)) - 1,
            min_int: -(1i64 << (opts.int_bits - 1)),
        }
    }

    fn tick(&mut self) -> R<()> {
        if self.fuel == 0 {
            return Err(Stop::Fuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn eval(&mut self, e: &Expr, frame: &mut Vec<Value>) -> R<Value> {
        self.tick()?;
        match e {
            Expr::Nil => Ok(Value::Nil),
            Expr::T => Ok(Value::True),
            Expr::Int(i) => Ok(Value::Int(*i)),
            // A float literal boxes a fresh object each evaluation, exactly
            // like the compiled allocation sequence.
            Expr::Float(bits) => Ok(Value::Float(Rc::new(*bits))),
            Expr::Const(i) => Ok(self.consts[*i].clone()),
            Expr::Local(s) => Ok(frame[*s].clone()),
            Expr::Global(g) => Ok(self.globals[*g].clone()),
            Expr::SetLocal(s, v) => {
                let val = self.eval(v, frame)?;
                frame[*s] = val.clone();
                Ok(val)
            }
            Expr::SetGlobal(g, v) => {
                let val = self.eval(v, frame)?;
                self.globals[*g] = val.clone();
                Ok(val)
            }
            Expr::If(c, t, f) => {
                if self.eval(c, frame)?.truthy() {
                    self.eval(t, frame)
                } else {
                    self.eval(f, frame)
                }
            }
            Expr::Progn(es) => {
                let mut last = Value::Nil;
                for e in es {
                    last = self.eval(e, frame)?;
                }
                Ok(last)
            }
            Expr::While(c, body) => {
                while self.eval(c, frame)?.truthy() {
                    for b in body {
                        self.eval(b, frame)?;
                    }
                }
                Ok(Value::Nil)
            }
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.call(*f, vals)
            }
            Expr::Funcall(f, args) => {
                // Arguments evaluate before the symbol check, matching the
                // staged argument evaluation the code generator emits.
                let fv = self.eval(f, frame)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.census.list_certain += 1;
                self.census.list_all += 1;
                let Some(name) = fv.symbol_name() else {
                    return Err(Stop::Trap(exit_code::ERR_FUNCALL));
                };
                match self.fn_by_name.get(name).copied() {
                    Some(id) => self.call(id, vals),
                    None => Err(Stop::Trap(exit_code::ERR_FUNCALL)),
                }
            }
            Expr::Prim(p, args) => self.prim(*p, args, frame),
            Expr::And(es) => {
                if es.is_empty() {
                    return Ok(Value::True);
                }
                let mut last = Value::True;
                for e in es {
                    last = self.eval(e, frame)?;
                    if !last.truthy() {
                        return Ok(Value::Nil);
                    }
                }
                Ok(last)
            }
            Expr::Or(es) => {
                for e in es {
                    let v = self.eval(e, frame)?;
                    if v.truthy() {
                        return Ok(v);
                    }
                }
                Ok(Value::Nil)
            }
        }
    }

    fn call(&mut self, f: usize, args: Vec<Value>) -> R<Value> {
        if self.depth >= self.max_depth {
            return Err(Stop::Depth);
        }
        let unit = self.unit;
        let def = &unit.fns[f];
        if args.len() != def.params {
            return Err(Stop::Bad(format!(
                "call of {} with {} args (takes {})",
                def.name,
                args.len(),
                def.params
            )));
        }
        self.depth += 1;
        self.census.calls += 1;
        let mut frame = args;
        frame.resize(def.nslots, Value::Nil);
        let mut result = Value::Nil;
        for b in &def.body {
            match self.eval(b, &mut frame) {
                Ok(v) => result = v,
                Err(stop) => {
                    self.depth -= 1;
                    return Err(stop);
                }
            }
        }
        self.depth -= 1;
        Ok(result)
    }

    fn prim(&mut self, p: Prim, args: &[Expr], frame: &mut Vec<Value>) -> R<Value> {
        use Prim::*;
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, frame)?);
        }
        self.census.prim_ops += 1;
        // A comparison or multiply operand that is an integer literal has its
        // type check elided by the compiler, so an op with only literal
        // operands is not *certainly* checked.
        let any_nonliteral = args.iter().any(|a| !matches!(a, Expr::Int(_)));
        match p {
            Cons => Ok(Value::Pair(Rc::new(RefCell::new((
                vals[0].clone(),
                vals[1].clone(),
            ))))),
            Car | Cdr => {
                self.census.list_all += 1;
                match &vals[0] {
                    Value::Pair(cell) => {
                        let pair = cell.borrow();
                        Ok(if p == Car {
                            pair.0.clone()
                        } else {
                            pair.1.clone()
                        })
                    }
                    _ => Err(Stop::Trap(exit_code::ERR_CAR)),
                }
            }
            Rplaca | Rplacd => {
                self.census.list_all += 1;
                match &vals[0] {
                    Value::Pair(cell) => {
                        if p == Rplaca {
                            cell.borrow_mut().0 = vals[1].clone();
                        } else {
                            cell.borrow_mut().1 = vals[1].clone();
                        }
                        // rplaca/rplacd return the pair.
                        Ok(vals[0].clone())
                    }
                    _ => Err(Stop::Trap(exit_code::ERR_CAR)),
                }
            }
            Eq => Ok(boolean(eq_value(&vals[0], &vals[1]))),
            Null => Ok(boolean(!vals[0].truthy())),
            Atom => Ok(boolean(!matches!(vals[0], Value::Pair(_)))),
            Pairp => Ok(boolean(matches!(vals[0], Value::Pair(_)))),
            Intp => Ok(boolean(matches!(vals[0], Value::Int(_)))),
            Idp => Ok(boolean(vals[0].symbol_name().is_some())),
            Vectorp => Ok(boolean(matches!(vals[0], Value::Vector(_)))),
            Floatp => Ok(boolean(matches!(vals[0], Value::Float(_)))),
            Plus | Difference => {
                self.census.arith_all += 1;
                self.census.arith_addsub += 1;
                self.add_sub(&vals[0], &vals[1], p == Plus)
            }
            Add1 | Sub1 => {
                self.census.arith_all += 1;
                self.census.arith_addsub += 1;
                self.add_sub(&vals[0], &Value::Int(1), p == Add1)
            }
            Minus => {
                self.census.arith_all += 1;
                self.census.arith_addsub += 1;
                self.add_sub(&Value::Int(0), &vals[0], false)
            }
            Times => {
                self.census.arith_all += 1;
                if any_nonliteral {
                    self.census.arith_certain += 1;
                }
                match self.numbers(&vals[0], &vals[1])? {
                    Nums::Ints(x, y) => {
                        let prod = x * y;
                        if prod < self.min_int || prod > self.max_int {
                            // The compiled multiply is not overflow-checked;
                            // an overflowing product silently corrupts the
                            // tag, so the program has left the domain the
                            // evaluator can model.
                            return Err(Stop::Bad(format!("times overflow: {x} * {y}")));
                        }
                        Ok(Value::Int(prod as i32))
                    }
                    Nums::Floats(x, y) => Ok(box_float(x * y)),
                }
            }
            Quotient => {
                self.census.arith_all += 1;
                self.census.arith_certain += 1;
                match self.numbers(&vals[0], &vals[1])? {
                    Nums::Ints(x, y) => {
                        if y == 0 {
                            return Err(Stop::Trap(exit_code::ERR_DIV0));
                        }
                        let q = x / y; // truncating, like the simulator's Div
                        if q < self.min_int || q > self.max_int {
                            return Err(Stop::Bad(format!("quotient overflow: {x} / {y}")));
                        }
                        Ok(Value::Int(q as i32))
                    }
                    Nums::Floats(x, y) => Ok(box_float(x / y)),
                }
            }
            Remainder => {
                self.census.arith_all += 1;
                self.census.arith_certain += 1;
                match self.numbers(&vals[0], &vals[1])? {
                    Nums::Ints(x, y) => {
                        if y == 0 {
                            return Err(Stop::Trap(exit_code::ERR_DIV0));
                        }
                        Ok(Value::Int((x % y) as i32))
                    }
                    // The runtime has no float remainder: the generic slow
                    // path raises the arithmetic-type error.
                    Nums::Floats(..) => Err(Stop::Trap(exit_code::ERR_ARITH)),
                }
            }
            Lessp | Greaterp | Leq | Geq | NumEq => {
                self.census.arith_all += 1;
                if any_nonliteral {
                    self.census.arith_certain += 1;
                }
                let truth = match self.numbers(&vals[0], &vals[1])? {
                    Nums::Ints(x, y) => match p {
                        Lessp => x < y,
                        Greaterp => x > y,
                        Leq => x <= y,
                        Geq => x >= y,
                        NumEq => x == y,
                        _ => unreachable!(),
                    },
                    Nums::Floats(x, y) => match p {
                        Lessp => x < y,
                        Greaterp => x > y,
                        Leq => x <= y,
                        Geq => x >= y,
                        // The runtime compares the coerced bit patterns.
                        NumEq => x.to_bits() == y.to_bits(),
                        _ => unreachable!(),
                    },
                };
                Ok(boolean(truth))
            }
            Mkvect => {
                self.census.vector_certain += 1;
                self.census.vector_all += 1;
                match vals[0] {
                    Value::Int(n) if n >= 0 => {
                        if n > MAX_VECTOR {
                            return Err(Stop::Bad(format!("mkvect of {n} slots")));
                        }
                        Ok(Value::Vector(Rc::new(RefCell::new(vec![
                            Value::Nil;
                            n as usize
                        ]))))
                    }
                    _ => Err(Stop::Trap(exit_code::ERR_VEC)),
                }
            }
            Getv | Putv => {
                self.census.vector_certain += 1;
                self.census.vector_all += 1;
                let Value::Vector(v) = &vals[0] else {
                    return Err(Stop::Trap(exit_code::ERR_VEC));
                };
                let Value::Int(i) = vals[1] else {
                    return Err(Stop::Trap(exit_code::ERR_VEC));
                };
                let len = v.borrow().len() as i32;
                if i < 0 || i >= len {
                    return Err(Stop::Trap(exit_code::ERR_BOUNDS));
                }
                if p == Getv {
                    Ok(v.borrow()[i as usize].clone())
                } else {
                    v.borrow_mut()[i as usize] = vals[2].clone();
                    // putv returns the stored value.
                    Ok(vals[2].clone())
                }
            }
            Upbv => {
                self.census.vector_all += 1;
                match &vals[0] {
                    Value::Vector(v) => Ok(Value::Int(v.borrow().len() as i32)),
                    _ => Err(Stop::Trap(exit_code::ERR_VEC)),
                }
            }
            Plist => {
                self.census.list_all += 1;
                match vals[0].symbol_name() {
                    Some(name) => Ok(self.plists.get(name).cloned().unwrap_or(Value::Nil)),
                    None => Err(Stop::Trap(exit_code::ERR_CAR)),
                }
            }
            Setplist => {
                self.census.list_all += 1;
                match vals[0].symbol_name() {
                    Some(name) => {
                        self.plists.insert(name.to_string(), vals[1].clone());
                        // setplist returns the stored plist.
                        Ok(vals[1].clone())
                    }
                    None => Err(Stop::Trap(exit_code::ERR_CAR)),
                }
            }
            Wrch => {
                self.census.arith_all += 1;
                self.census.arith_certain += 1;
                match vals[0] {
                    Value::Int(c) => {
                        self.output.push((c & 0xFF) as u8 as char);
                        Ok(vals[0].clone())
                    }
                    _ => Err(Stop::Trap(exit_code::ERR_ARITH)),
                }
            }
            Wrint => {
                self.census.arith_all += 1;
                self.census.arith_certain += 1;
                match vals[0] {
                    Value::Int(n) => {
                        let _ = write!(self.output, "{n}");
                        Ok(vals[0].clone())
                    }
                    _ => Err(Stop::Trap(exit_code::ERR_ARITH)),
                }
            }
            PrinName => {
                self.census.list_certain += 1;
                self.census.list_all += 1;
                match vals[0].symbol_name() {
                    Some(name) => {
                        self.output.push_str(name);
                        Ok(vals[0].clone())
                    }
                    None => Err(Stop::Trap(exit_code::ERR_CAR)),
                }
            }
            Reclaim => Ok(Value::Nil),
            FPlus | FDifference | FTimes | FQuotient => {
                self.census.float_ops += 1;
                let x = self.unbox_float(&vals[0])?;
                let y = self.unbox_float(&vals[1])?;
                let r = match p {
                    FPlus => x + y,
                    FDifference => x - y,
                    FTimes => x * y,
                    FQuotient => x / y,
                    _ => unreachable!(),
                };
                Ok(box_float(r))
            }
            FLessp => {
                self.census.float_ops += 1;
                let x = self.unbox_float(&vals[0])?;
                let y = self.unbox_float(&vals[1])?;
                Ok(boolean(x < y))
            }
            FloatFromInt => {
                self.census.arith_all += 1;
                self.census.arith_certain += 1;
                match vals[0] {
                    Value::Int(n) => Ok(box_float(n as f32)),
                    _ => Err(Stop::Trap(exit_code::ERR_ARITH)),
                }
            }
        }
    }

    /// Generic add/sub: both-int with an overflow check, otherwise float
    /// coercion, otherwise the arithmetic-type trap — the integer-biased
    /// sequence plus its runtime slow path.
    fn add_sub(&mut self, a: &Value, b: &Value, add: bool) -> R<Value> {
        match self.numbers(a, b)? {
            Nums::Ints(x, y) => {
                let r = if add { x + y } else { x - y };
                if r < self.min_int || r > self.max_int {
                    return Err(Stop::Trap(exit_code::ERR_OVERFLOW));
                }
                Ok(Value::Int(r as i32))
            }
            Nums::Floats(x, y) => Ok(box_float(if add { x + y } else { x - y })),
        }
    }

    /// Coerce an operand pair the way the generic arithmetic runtime does:
    /// both ints stay exact, a float contaminates to float, anything else is
    /// the arithmetic-type trap.
    fn numbers(&mut self, a: &Value, b: &Value) -> R<Nums> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Nums::Ints(*x as i64, *y as i64)),
            (Value::Int(x), Value::Float(y)) => Ok(Nums::Floats(*x as f32, f32::from_bits(**y))),
            (Value::Float(x), Value::Int(y)) => Ok(Nums::Floats(f32::from_bits(**x), *y as f32)),
            (Value::Float(x), Value::Float(y)) => {
                Ok(Nums::Floats(f32::from_bits(**x), f32::from_bits(**y)))
            }
            _ => Err(Stop::Trap(exit_code::ERR_ARITH)),
        }
    }

    fn unbox_float(&mut self, v: &Value) -> R<f32> {
        match v {
            Value::Float(bits) => Ok(f32::from_bits(**bits)),
            _ => Err(Stop::Trap(exit_code::ERR_ARITH)),
        }
    }
}

enum Nums {
    Ints(i64, i64),
    Floats(f32, f32),
}

fn boolean(b: bool) -> Value {
    if b {
        Value::True
    } else {
        Value::Nil
    }
}

fn box_float(f: f32) -> Value {
    Value::Float(Rc::new(f.to_bits()))
}

/// Materialise one constant-table entry. Quoted `nil`/`t` are the interned
/// runtime objects; quoted lists build shared, mutable pairs.
fn sexp_to_value(s: &Sexp) -> Value {
    match s {
        Sexp::Int(i) => Value::Int(*i),
        Sexp::Float(bits) => Value::Float(Rc::new(*bits)),
        Sexp::Sym(name) => match name.as_str() {
            "nil" => Value::Nil,
            "t" => Value::True,
            _ => Value::Sym(Rc::from(name.as_str())),
        },
        Sexp::List(items, tail) => {
            let mut acc = match tail {
                Some(t) => sexp_to_value(t),
                None => Value::Nil,
            };
            for item in items.iter().rev() {
                acc = Value::Pair(Rc::new(RefCell::new((sexp_to_value(item), acc))));
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> EvalOutcome {
        eval_source(src, &EvalOptions::default()).expect("evaluates")
    }

    #[test]
    fn prints_like_the_compiled_system() {
        let o = run("(print (cons 1 (cons 2 nil))) (print 'sym) (print (list 1 '(a . b)))");
        assert_eq!(o.halt_code, exit_code::OK);
        assert_eq!(o.output, "(1 2)\nsym\n(1 (a . b))\n");
    }

    #[test]
    fn arithmetic_and_errors() {
        assert_eq!(run("(print (quotient -12 4))").output, "-3\n");
        assert_eq!(run("(print (remainder 7 3))").output, "1\n");
        assert_eq!(run("(quotient 1 0)").halt_code, exit_code::ERR_DIV0);
        assert_eq!(run("(car 5)").halt_code, exit_code::ERR_CAR);
        assert_eq!(run("(plus 'a 1)").halt_code, exit_code::ERR_ARITH);
        assert_eq!(run("(getv (mkvect 2) 7)").halt_code, exit_code::ERR_BOUNDS);
        assert_eq!(run("(funcall 'no-def 1)").halt_code, exit_code::ERR_FUNCALL);
        let max = (1i64 << 26) - 1; // high5: 27-bit fixnums
        assert_eq!(
            run(&format!("(plus {max} 1)")).halt_code,
            exit_code::ERR_OVERFLOW
        );
    }

    #[test]
    fn nil_is_a_symbol_and_vectors_have_n_slots() {
        let o = run("(print (idp nil)) (print (upbv (mkvect 3))) (print (atom (mkvect 1)))");
        assert_eq!(o.output, "t\n3\nt\n");
    }

    #[test]
    fn partial_output_survives_a_trap() {
        let o = run("(wrch 104) (wrch 105) (car 5)");
        assert_eq!(o.halt_code, exit_code::ERR_CAR);
        assert_eq!(o.output, "hi");
    }

    #[test]
    fn census_counts_checked_ops() {
        let o = run("(plus 1 2) (times 3 4) (car '(1)) (getv (mkvect 2) 1)");
        assert_eq!(o.census.arith_addsub, 1);
        assert_eq!(o.census.arith_all, 2);
        // both-literal times is fully elided
        assert_eq!(o.census.arith_certain, 0);
        assert_eq!(o.census.list_all, 1);
        assert_eq!(o.census.vector_certain, 2); // mkvect + getv
        assert_eq!(o.census.float_ops, 0);
    }

    #[test]
    fn fuel_and_depth_are_harness_errors() {
        let opts = EvalOptions {
            fuel: 100,
            ..EvalOptions::default()
        };
        assert!(matches!(
            eval_source("(setq x 0)", &opts),
            Err(EvalError::Compile(_))
        ));
        let looping = "(defun spin () (spin)) (spin)";
        let tight = EvalOptions {
            max_depth: 10,
            ..EvalOptions::default()
        };
        assert_eq!(eval_source(looping, &tight).unwrap_err(), EvalError::Depth);
        let thirsty = EvalOptions {
            fuel: 1_000,
            ..EvalOptions::default()
        };
        assert_eq!(
            eval_source(
                "(defvar i 0) (while (lessp i 1000) (setq i (add1 i)))",
                &thirsty
            )
            .unwrap_err(),
            EvalError::Fuel
        );
    }
}
