//! The runtime system, emitted as simulated machine code.
//!
//! Everything here executes *inside* the simulation and is therefore measured,
//! exactly as the PSL system modules were in the paper ("each program includes…
//! the LISP system modules that are used by the program"). The pieces:
//!
//! - a two-space **copying garbage collector** (Cheney scan), whose own tag
//!   inspections are annotated tag operations — `dedgc` spends about half its time
//!   here;
//! - the **generic-arithmetic fallback** routines reached when the inline
//!   integer-biased tests fail (floats, and the overflow error path);
//! - **error stops** for run-time check failures;
//! - the **symbol printer** used by `prin-name`.
//!
//! # GC design
//!
//! Objects are pairs (two words, no header) or headered objects (vectors and
//! floats, `(len << 10) | code` headers that read as fixnums under every tag
//! scheme). Forwarding is detected without a dedicated mark: a first word that is
//! a non-integer whose pointer part lies in to-space *must* be a forwarding
//! pointer, because nothing else can point into to-space during a collection.
//!
//! Roots are: the root table built by [`crate::layout`] (global cells, symbol
//! value/plist cells), the Lisp stack between `Sp` and the stack top, and the
//! caller-spilled `A0`/`A1`. The code generator guarantees that at any allocation
//! point every other live value is on the Lisp stack.

use mipsx::{Annot, Asm, CheckCat, Cond, FpOp, Insn, Label, Provenance, Reg, TagOpKind, WriteKind};
use tagword::Tag;

use crate::layout::{Layout, FLOAT_CODE, HDR_LEN_SHIFT, SYM_NAME, SYM_NAMELEN};
use crate::tagops::TagOps;

/// Exit codes used by runtime error stops.
pub mod exit_code {
    /// Normal completion.
    pub const OK: i32 = 0;
    /// car/cdr/rplaca/rplacd of a non-pair.
    pub const ERR_CAR: i32 = 10;
    /// Vector operation on a non-vector or with a non-integer index.
    pub const ERR_VEC: i32 = 11;
    /// Vector index out of bounds.
    pub const ERR_BOUNDS: i32 = 12;
    /// Arithmetic on a non-number.
    pub const ERR_ARITH: i32 = 13;
    /// Heap exhausted even after collection.
    pub const ERR_OOM: i32 = 14;
    /// funcall of a symbol with no function definition.
    pub const ERR_FUNCALL: i32 = 15;
    /// Fixnum overflow (no bignums in this system).
    pub const ERR_OVERFLOW: i32 = 16;
    /// Division by zero.
    pub const ERR_DIV0: i32 = 17;
    /// Lisp stack overflow.
    pub const ERR_STACK: i32 = 18;
}

/// Labels of the runtime routines, created before user code is generated so call
/// sites can reference them, and bound by [`emit_runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RtLabels {
    /// Collect garbage. In: `A2` = bytes needed (may be 0). Spills/reloads
    /// `A0`/`A1`; clobbers `T0..T9`, `X0`, `X1`; preserves `A2`; returns via `Link`.
    pub gc_collect: Label,
    /// `A0 + A1 → A0` when not both fixnums (float path) or on overflow (error).
    pub generic_add: Label,
    /// `A0 - A1 → A0`, as above.
    pub generic_sub: Label,
    /// `A0 * A1 → A0`, as above.
    pub generic_mul: Label,
    /// `A0 / A1 → A0`, as above.
    pub generic_div: Label,
    /// `A0 % A1 → A0`; floats are an error.
    pub generic_rem: Label,
    /// Numeric compare `A0 ? A1 → t/nil in A0`; the condition is fixed per label.
    pub generic_less: Label,
    /// See [`RtLabels::generic_less`].
    pub generic_greater: Label,
    /// See [`RtLabels::generic_less`].
    pub generic_leq: Label,
    /// See [`RtLabels::generic_less`].
    pub generic_geq: Label,
    /// See [`RtLabels::generic_less`].
    pub generic_numeq: Label,
    /// Print the name of the symbol in `A0`; clobbers `T8`, `T9`, `X0`.
    pub print_symbol: Label,
    /// Error stops.
    pub err_car: Label,
    /// See [`RtLabels::err_car`].
    pub err_vec: Label,
    /// See [`RtLabels::err_car`].
    pub err_bounds: Label,
    /// See [`RtLabels::err_car`].
    pub err_arith: Label,
    /// See [`RtLabels::err_car`].
    pub err_funcall: Label,
    /// See [`RtLabels::err_car`].
    pub err_overflow: Label,
    /// See [`RtLabels::err_car`].
    pub err_div0: Label,
    /// See [`RtLabels::err_car`].
    pub err_oom: Label,
    /// See [`RtLabels::err_car`].
    pub err_stack: Label,
}

impl RtLabels {
    /// Allocate all labels (unbound) on `asm`.
    pub fn create(asm: &mut Asm) -> RtLabels {
        RtLabels {
            gc_collect: asm.new_label(),
            generic_add: asm.new_label(),
            generic_sub: asm.new_label(),
            generic_mul: asm.new_label(),
            generic_div: asm.new_label(),
            generic_rem: asm.new_label(),
            generic_less: asm.new_label(),
            generic_greater: asm.new_label(),
            generic_leq: asm.new_label(),
            generic_geq: asm.new_label(),
            generic_numeq: asm.new_label(),
            print_symbol: asm.new_label(),
            err_car: asm.new_label(),
            err_vec: asm.new_label(),
            err_bounds: asm.new_label(),
            err_arith: asm.new_label(),
            err_funcall: asm.new_label(),
            err_overflow: asm.new_label(),
            err_div0: asm.new_label(),
            err_oom: asm.new_label(),
            err_stack: asm.new_label(),
        }
    }
}

const BASE_EXTRACT: Annot = Annot {
    tag_op: Some(TagOpKind::Extract),
    cat: CheckCat::NotChecking,
    prov: Provenance::Base,
};
const BASE_CHECK: Annot = Annot {
    tag_op: Some(TagOpKind::Check),
    cat: CheckCat::NotChecking,
    prov: Provenance::Base,
};
const BASE_REMOVE: Annot = Annot {
    tag_op: Some(TagOpKind::Remove),
    cat: CheckCat::NotChecking,
    prov: Provenance::Base,
};
const GENERIC: Annot = Annot {
    tag_op: Some(TagOpKind::Generic),
    cat: CheckCat::Arith,
    prov: Provenance::Checking,
};

/// Emit every runtime routine, binding the labels in `rt`.
pub fn emit_runtime(asm: &mut Asm, t: &TagOps, layout: &Layout, rt: &RtLabels) {
    emit_errors(asm, rt);
    emit_gc(asm, t, layout, rt);
    emit_generic_arith(asm, t, layout, rt);
    emit_print_symbol(asm, t, rt);
}

fn emit_errors(asm: &mut Asm, rt: &RtLabels) {
    let stops = [
        (rt.err_car, exit_code::ERR_CAR, "err_car"),
        (rt.err_vec, exit_code::ERR_VEC, "err_vec"),
        (rt.err_bounds, exit_code::ERR_BOUNDS, "err_bounds"),
        (rt.err_arith, exit_code::ERR_ARITH, "err_arith"),
        (rt.err_funcall, exit_code::ERR_FUNCALL, "err_funcall"),
        (rt.err_overflow, exit_code::ERR_OVERFLOW, "err_overflow"),
        (rt.err_div0, exit_code::ERR_DIV0, "err_div0"),
        (rt.err_oom, exit_code::ERR_OOM, "err_oom"),
        (rt.err_stack, exit_code::ERR_STACK, "err_stack"),
    ];
    for (label, code, name) in stops {
        asm.bind(label);
        asm.name_label(name, label);
        asm.li(Reg::X0, code);
        asm.halt(Reg::X0);
    }
}

/// The copying collector.
///
/// Register plan: `T0` scan, `T1` free, `T2` from-lo, `T3` from-hi, `T4` to-lo,
/// `T5` cursor, `T6` cell/limit, `T7` size scratch, `T8` forward arg/result,
/// `T9`/`X0` scratch, `X1` forward's link.
fn emit_gc(asm: &mut Asm, t: &TagOps, layout: &Layout, rt: &RtLabels) {
    let flag_addr = layout.rt_cell_addr(0);
    let semi = layout.semi_bytes as i32;

    let forward = asm.new_label();

    asm.bind(rt.gc_collect);
    asm.name_label("gc_collect", rt.gc_collect);

    // Spill the two live registers onto the Lisp stack (they become roots).
    asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, -8));
    asm.st(Reg::A0, Reg::Sp, 0);
    asm.st(Reg::A1, Reg::Sp, 4);

    // Pick spaces from the flag.
    let use_b = asm.new_label();
    let spaces_done = asm.new_label();
    asm.li(Reg::X0, flag_addr as i32);
    asm.ld(Reg::X0, Reg::X0, 0);
    asm.nop(); // load delay
    asm.bne(Reg::X0, Reg::Zero, use_b);
    // flag == 0: from = A, to = B
    asm.li(Reg::T2, layout.heap_a as i32);
    asm.li(Reg::T4, layout.heap_b as i32);
    asm.j(spaces_done);
    asm.bind(use_b);
    // flag == 1: from = B, to = A
    asm.li(Reg::T2, layout.heap_b as i32);
    asm.li(Reg::T4, layout.heap_a as i32);
    asm.bind(spaces_done);
    asm.emit(Insn::Addi(Reg::T3, Reg::T2, semi));
    asm.mov(Reg::T0, Reg::T4);
    asm.mov(Reg::T1, Reg::T4);

    // --- root table --------------------------------------------------------
    let root_loop = asm.new_label();
    let root_done = asm.new_label();
    asm.li(Reg::T5, layout.roots_base as i32);
    asm.bind(root_loop);
    asm.ld(Reg::T6, Reg::T5, 0);
    asm.nop();
    asm.beq(Reg::T6, Reg::Zero, root_done);
    asm.ld(Reg::T8, Reg::T6, 0);
    asm.jal(forward, Reg::X1);
    asm.st(Reg::T8, Reg::T6, 0);
    asm.emit(Insn::Addi(Reg::T5, Reg::T5, 4));
    asm.j(root_loop);
    asm.bind(root_done);

    // --- stack -------------------------------------------------------------
    let stack_loop = asm.new_label();
    let stack_done = asm.new_label();
    asm.mov(Reg::T5, Reg::Sp);
    asm.li(Reg::T6, layout.stack_top as i32);
    asm.bind(stack_loop);
    asm.br(Cond::Ge, Reg::T5, Reg::T6, stack_done);
    asm.ld(Reg::T8, Reg::T5, 0);
    asm.jal(forward, Reg::X1);
    asm.st(Reg::T8, Reg::T5, 0);
    asm.emit(Insn::Addi(Reg::T5, Reg::T5, 4));
    asm.j(stack_loop);
    asm.bind(stack_done);

    // --- Cheney scan ---------------------------------------------------------
    let scan_loop = asm.new_label();
    let scan_done = asm.new_label();
    asm.bind(scan_loop);
    asm.br(Cond::Ge, Reg::T0, Reg::T1, scan_done);
    asm.ld(Reg::T8, Reg::T0, 0);
    asm.jal(forward, Reg::X1);
    asm.st(Reg::T8, Reg::T0, 0);
    asm.emit(Insn::Addi(Reg::T0, Reg::T0, 4));
    asm.j(scan_loop);
    asm.bind(scan_done);

    // --- flip ----------------------------------------------------------------
    asm.mov(Reg::Hp, Reg::T1);
    asm.emit(Insn::Addi(Reg::Hl, Reg::T4, semi));
    asm.li(Reg::X0, flag_addr as i32);
    asm.ld(Reg::T9, Reg::X0, 0);
    asm.nop();
    asm.emit(Insn::Xori(Reg::T9, Reg::T9, 1));
    asm.st(Reg::T9, Reg::X0, 0);

    // Space check: Hp + A2 must fit.
    let ok = asm.new_label();
    asm.emit(Insn::Add(Reg::X0, Reg::Hp, Reg::A2));
    asm.br(Cond::Le, Reg::X0, Reg::Hl, ok);
    asm.j(rt.err_oom);
    asm.bind(ok);

    // Reload roots and return.
    asm.ld(Reg::A0, Reg::Sp, 0);
    asm.ld(Reg::A1, Reg::Sp, 4);
    asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, 8));
    asm.jr(Reg::Link);

    // --- forward(T8) → T8; link in X1 ----------------------------------------
    let ret = asm.new_label();
    let not_forwarded = asm.new_label();
    asm.bind(forward);
    asm.name_label("gc_forward", forward);

    // Integers are immediate: return unchanged. (A tag inspection the paper
    // counts: the GC is full of these.)
    if t.scheme.is_high() {
        let bits = t.scheme.tag_bits() as u8;
        asm.with_annot(BASE_EXTRACT, |a| {
            a.emit(Insn::Sll(Reg::T9, Reg::T8, bits));
            a.emit(Insn::Sra(Reg::T9, Reg::T9, bits));
        });
        asm.with_annot(BASE_CHECK, |a| a.br(Cond::Eq, Reg::T9, Reg::T8, ret));
    } else {
        asm.with_annot(BASE_EXTRACT, |a| a.emit(Insn::Andi(Reg::T9, Reg::T8, 0b11)));
        asm.with_annot(BASE_CHECK, |a| a.bri(Cond::Eq, Reg::T9, 0, ret));
    }
    // Pointer part; ignore anything outside from-space (symbols, constants,
    // already-new pointers).
    asm.with_annot(BASE_REMOVE, |a| {
        a.emit(Insn::And(Reg::T9, Reg::T8, Reg::Mask))
    });
    asm.br(Cond::Lt, Reg::T9, Reg::T2, ret);
    asm.br(Cond::Ge, Reg::T9, Reg::T3, ret);

    // Forwarded? First word being a non-integer pointing into to-space.
    asm.ld(Reg::X0, Reg::T9, 0);
    if t.scheme.is_high() {
        let bits = t.scheme.tag_bits() as u8;
        asm.with_annot(BASE_EXTRACT, |a| {
            a.emit(Insn::Sll(Reg::T7, Reg::X0, bits));
            a.emit(Insn::Sra(Reg::T7, Reg::T7, bits));
        });
        asm.with_annot(BASE_CHECK, |a| {
            a.br(Cond::Eq, Reg::T7, Reg::X0, not_forwarded)
        });
    } else {
        asm.with_annot(BASE_EXTRACT, |a| a.emit(Insn::Andi(Reg::T7, Reg::X0, 0b11)));
        asm.with_annot(BASE_CHECK, |a| a.bri(Cond::Eq, Reg::T7, 0, not_forwarded));
    }
    asm.with_annot(BASE_REMOVE, |a| {
        a.emit(Insn::And(Reg::T7, Reg::X0, Reg::Mask))
    });
    asm.br(Cond::Lt, Reg::T7, Reg::T4, not_forwarded);
    // S0/S1 are forward's scratch: the outer loops own T5/T6 as cursors, and
    // compiled Lisp code never keeps values in the callee-saved registers.
    asm.emit(Insn::Addi(Reg::S0, Reg::T4, semi));
    asm.br(Cond::Ge, Reg::T7, Reg::S0, not_forwarded);
    // Forwarded: the stored word is the new tagged pointer.
    asm.mov(Reg::T8, Reg::X0);
    asm.j(ret);

    asm.bind(not_forwarded);
    // Size: pairs are 8 bytes; headered objects round8((len+1)*4).
    let headered = asm.new_label();
    let copy = asm.new_label();
    let pair_raw = t.check_value(Tag::Pair) as i32;
    asm.with_annot(BASE_EXTRACT, |a| {
        if t.scheme.is_high() {
            a.emit(Insn::Srl(Reg::T7, Reg::T8, t.field().shift));
        } else {
            a.emit(Insn::Andi(Reg::T7, Reg::T8, t.field().mask));
        }
    });
    asm.with_annot(BASE_CHECK, |a| a.bri(Cond::Ne, Reg::T7, pair_raw, headered));
    asm.li(Reg::T7, 8);
    asm.j(copy);
    asm.bind(headered);
    // X0 still holds the header word.
    asm.emit(Insn::Srl(Reg::T7, Reg::X0, HDR_LEN_SHIFT as u8));
    asm.emit(Insn::Addi(Reg::T7, Reg::T7, 1));
    asm.emit(Insn::Sll(Reg::T7, Reg::T7, 2));
    asm.emit(Insn::Addi(Reg::T7, Reg::T7, 7));
    asm.emit(Insn::Srl(Reg::T7, Reg::T7, 3));
    asm.emit(Insn::Sll(Reg::T7, Reg::T7, 3));
    asm.bind(copy);

    // Copy T7 bytes from T9 to T1 (X0 = cursor offset; S0/S1 scratch).
    let copy_loop = asm.new_label();
    let copy_done = asm.new_label();
    asm.li(Reg::X0, 0);
    asm.bind(copy_loop);
    asm.br(Cond::Ge, Reg::X0, Reg::T7, copy_done);
    asm.emit(Insn::Add(Reg::S0, Reg::T9, Reg::X0));
    asm.ld(Reg::S0, Reg::S0, 0);
    asm.emit(Insn::Add(Reg::S1, Reg::T1, Reg::X0));
    asm.st(Reg::S0, Reg::S1, 0);
    asm.emit(Insn::Addi(Reg::X0, Reg::X0, 4));
    asm.j(copy_loop);
    asm.bind(copy_done);

    // New tagged pointer: to-space address | original tag bits (tag = T8 ^ T9).
    asm.emit(Insn::Xor(Reg::X0, Reg::T8, Reg::T9));
    asm.with_annot(
        Annot {
            tag_op: Some(TagOpKind::Insert),
            cat: CheckCat::NotChecking,
            prov: Provenance::Base,
        },
        |a| a.emit(Insn::Or(Reg::X0, Reg::T1, Reg::X0)),
    );
    // Install forwarding pointer, bump free.
    asm.st(Reg::X0, Reg::T9, 0);
    asm.emit(Insn::Add(Reg::T1, Reg::T1, Reg::T7));
    asm.mov(Reg::T8, Reg::X0);
    asm.bind(ret);
    asm.jr(Reg::X1);
}

/// Unbox the float in `src` into raw f32 bits in `dst`. If `src` is an integer,
/// convert it instead. Anything else jumps to the arithmetic error stop.
fn emit_tofloat(asm: &mut Asm, t: &TagOps, src: Reg, dst: Reg, rt: &RtLabels) {
    let is_float = asm.new_label();
    let done = asm.new_label();
    // integer? convert.
    t.branch_int(
        asm,
        src,
        Reg::X0,
        is_float,
        false,
        CheckCat::Arith,
        Provenance::Checking,
    );
    if t.scheme.is_high() {
        asm.with_annot(GENERIC, |a| {
            a.emit(Insn::Fop(FpOp::FromInt, dst, src, Reg::Zero))
        });
    } else {
        asm.with_annot(GENERIC, |a| {
            a.emit(Insn::Sra(dst, src, 2));
            a.emit(Insn::Fop(FpOp::FromInt, dst, dst, Reg::Zero));
        });
    }
    asm.j(done);
    asm.bind(is_float);
    // must be a float box
    t.check_exact(
        asm,
        src,
        Reg::X0,
        Tag::Float,
        rt.err_arith,
        CheckCat::Arith,
        Provenance::Checking,
    );
    let (base, fold) = t.address(asm, src, Reg::X0, Tag::Float, GENERIC);
    asm.with_annot(GENERIC, |a| a.ld(dst, base, fold + 4));
    asm.bind(done);
}

/// Box the raw f32 bits in `src` as a fresh float object, result in `A0`.
/// Clobbers `X0`, `X1`; may collect.
fn emit_boxfloat(asm: &mut Asm, t: &TagOps, src: Reg, rt: &RtLabels) {
    let ok = asm.new_label();
    asm.emit(Insn::Addi(Reg::X0, Reg::Hp, 8));
    asm.br(Cond::Le, Reg::X0, Reg::Hl, ok);
    asm.li(Reg::A2, 8);
    // Link was saved (shifted) by the generic-op prologue, so clobbering it here
    // is fine; gc_collect returns via Link.
    asm.jal(rt.gc_collect, Reg::Link);
    asm.bind(ok);
    asm.li(Reg::X0, crate::layout::header(FLOAT_CODE, 1) as i32);
    asm.st(Reg::X0, Reg::Hp, 0);
    asm.st(src, Reg::Hp, 4);
    t.insert(asm, Reg::A0, Reg::Hp, Reg::X0, Tag::Float, GENERIC);
    asm.emit(Insn::Addi(Reg::Hp, Reg::Hp, 8));
}

fn emit_generic_arith(asm: &mut Asm, t: &TagOps, layout: &Layout, rt: &RtLabels) {
    // Binary float ops. Called with A0, A1 when not both fixnums; saves Link on
    // the stack because boxing may collect.
    let ops: [(Label, Option<FpOp>, &str); 5] = [
        (rt.generic_add, Some(FpOp::Add), "generic_add"),
        (rt.generic_sub, Some(FpOp::Sub), "generic_sub"),
        (rt.generic_mul, Some(FpOp::Mul), "generic_mul"),
        (rt.generic_div, Some(FpOp::Div), "generic_div"),
        (rt.generic_rem, None, "generic_rem"),
    ];
    for (label, fop, name) in ops {
        asm.bind(label);
        asm.name_label(name, label);
        let Some(fop) = fop else {
            // remainder has no float form: reaching here is a type error (or a
            // fixnum overflow, which remainder cannot produce).
            asm.j(rt.err_arith);
            continue;
        };
        // If both are integers we got here through the overflow path: error.
        let not_both_int = asm.new_label();
        t.branch_int(
            asm,
            Reg::A0,
            Reg::X0,
            not_both_int,
            false,
            CheckCat::Arith,
            Provenance::Checking,
        );
        t.branch_int(
            asm,
            Reg::A1,
            Reg::X0,
            not_both_int,
            false,
            CheckCat::Arith,
            Provenance::Checking,
        );
        asm.j(rt.err_overflow);
        asm.bind(not_both_int);
        // Save Link (shifted to look like a fixnum) around the boxing alloc.
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, -4));
        asm.emit(Insn::Sll(Reg::X0, Reg::Link, 2));
        asm.st(Reg::X0, Reg::Sp, 0);
        emit_tofloat(asm, t, Reg::A0, Reg::T6, rt);
        emit_tofloat(asm, t, Reg::A1, Reg::T7, rt);
        asm.with_annot(GENERIC, |a| {
            a.emit(Insn::Fop(fop, Reg::T6, Reg::T6, Reg::T7))
        });
        emit_boxfloat(asm, t, Reg::T6, rt);
        asm.ld(Reg::X0, Reg::Sp, 0);
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, 4));
        asm.emit(Insn::Sra(Reg::X0, Reg::X0, 2));
        asm.jr(Reg::X0);
    }

    // Comparisons: produce t/nil in A0; no allocation, Link untouched.
    let cmps = [
        (rt.generic_less, FpOp::Lt, false, "generic_less"),
        (rt.generic_greater, FpOp::Lt, true, "generic_greater"),
        (rt.generic_leq, FpOp::Lt, true, "generic_leq"), // a<=b == !(b<a)
        (rt.generic_geq, FpOp::Lt, false, "generic_geq"), // a>=b == !(a<b)
        (rt.generic_numeq, FpOp::Sub, false, "generic_numeq"),
    ];
    for (i, (label, _, swapped, name)) in cmps.into_iter().enumerate() {
        asm.bind(label);
        asm.name_label(name, label);
        emit_tofloat(asm, t, Reg::A0, Reg::T6, rt);
        emit_tofloat(asm, t, Reg::A1, Reg::T7, rt);
        let yes = asm.new_label();
        let done = asm.new_label();
        let (x, y) = if swapped {
            (Reg::T7, Reg::T6)
        } else {
            (Reg::T6, Reg::T7)
        };
        match i {
            0 | 1 => {
                // less / greater: flag = x < y
                asm.with_annot(GENERIC, |a| a.emit(Insn::Fop(FpOp::Lt, Reg::X0, x, y)));
                asm.bne(Reg::X0, Reg::Zero, yes);
            }
            2 | 3 => {
                // leq/geq: !(x < y) with operands pre-swapped appropriately
                asm.with_annot(GENERIC, |a| a.emit(Insn::Fop(FpOp::Lt, Reg::X0, x, y)));
                asm.beq(Reg::X0, Reg::Zero, yes);
            }
            _ => {
                // numeq: bit-compare after coercion (adequate for our workloads)
                asm.beq(Reg::T6, Reg::T7, yes);
            }
        }
        asm.mov(Reg::A0, Reg::Nil);
        asm.j(done);
        asm.bind(yes);
        asm.mov(Reg::A0, Reg::TrueR);
        asm.bind(done);
        asm.jr(Reg::Link);
    }

    let _ = layout;
}

fn emit_print_symbol(asm: &mut Asm, t: &TagOps, rt: &RtLabels) {
    asm.bind(rt.print_symbol);
    asm.name_label("print_symbol", rt.print_symbol);
    let (base, fold) = t.address(asm, Reg::A0, Reg::X0, Tag::Symbol, BASE_REMOVE);
    // T8 = char cursor, T9 = end
    asm.ld(Reg::T9, base, fold + SYM_NAMELEN);
    asm.emit(Insn::Addi(Reg::T8, base, fold + SYM_NAME));
    asm.emit(Insn::Sll(Reg::T9, Reg::T9, 2));
    asm.emit(Insn::Add(Reg::T9, Reg::T8, Reg::T9));
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.bind(lp);
    asm.br(Cond::Ge, Reg::T8, Reg::T9, done);
    asm.ld(Reg::X0, Reg::T8, 0);
    asm.nop();
    asm.write(Reg::X0, WriteKind::Char);
    asm.emit(Insn::Addi(Reg::T8, Reg::T8, 4));
    asm.j(lp);
    asm.bind(done);
    asm.jr(Reg::Link);
}

#[allow(unused_imports)]
use crate::front::CheckingMode as _docref;
