//! Low-bit tagging of real Rust pointers.
//!
//! The paper's conclusion — that putting the tag in the low 2–3 bits of a word gives
//! most of the benefit of tagged hardware at no hardware cost — is exactly the design
//! that modern dynamic-language runtimes adopted. This module provides that design
//! for native Rust code: a [`TaggedPtr`] that packs a small integer tag into the
//! alignment bits of a `Box` pointer.
//!
//! ```
//! use tagword::ptr::TaggedPtr;
//!
//! // u64 is 8-byte aligned, so 3 tag bits are free.
//! let tp: TaggedPtr<u64> = TaggedPtr::new(Box::new(99), 5).unwrap();
//! assert_eq!(tp.tag(), 5);
//! assert_eq!(*tp.get(), 99);
//! let (b, tag) = tp.into_parts();
//! assert_eq!((*b, tag), (99, 5));
//! ```

use std::fmt;
use std::marker::PhantomData;
use std::ptr::NonNull;

/// Number of low bits guaranteed free by `T`'s alignment.
pub const fn free_bits<T>() -> u32 {
    std::mem::align_of::<T>().trailing_zeros()
}

/// A `Box<T>` with a small integer tag packed into its alignment bits.
///
/// The tag must fit in [`free_bits::<T>()`](free_bits) bits; construction fails
/// otherwise. The pointer and tag are recovered exactly; the pointee is owned and
/// dropped with the `TaggedPtr`.
pub struct TaggedPtr<T> {
    raw: NonNull<T>,
    _owns: PhantomData<T>,
}

// SAFETY: TaggedPtr owns its pointee exactly like Box<T> does; it is Send/Sync
// whenever Box<T> would be.
unsafe impl<T: Send> Send for TaggedPtr<T> {}
unsafe impl<T: Sync> Sync for TaggedPtr<T> {}

impl<T> TaggedPtr<T> {
    /// Mask covering the usable tag bits for `T`.
    pub const TAG_MASK: usize = std::mem::align_of::<T>() - 1;

    /// Pack `value` and `tag` together.
    ///
    /// # Errors
    ///
    /// Returns the box back if `tag` does not fit in the alignment bits of `T`.
    pub fn new(value: Box<T>, tag: usize) -> Result<Self, Box<T>> {
        if tag & !Self::TAG_MASK != 0 {
            return Err(value);
        }
        let p = Box::into_raw(value);
        debug_assert_eq!(p as usize & Self::TAG_MASK, 0, "Box must be aligned");
        // SAFETY: p came from Box::into_raw, hence non-null; or-ing bits below the
        // alignment cannot make it null.
        let raw = unsafe { NonNull::new_unchecked((p as usize | tag) as *mut T) };
        Ok(TaggedPtr {
            raw,
            _owns: PhantomData,
        })
    }

    /// The stored tag.
    pub fn tag(&self) -> usize {
        self.raw.as_ptr() as usize & Self::TAG_MASK
    }

    fn untagged(&self) -> *mut T {
        (self.raw.as_ptr() as usize & !Self::TAG_MASK) as *mut T
    }

    /// Borrow the pointee.
    pub fn get(&self) -> &T {
        // SAFETY: untagged() recovers the pointer produced by Box::into_raw in
        // new(); the pointee is alive as long as self is.
        unsafe { &*self.untagged() }
    }

    /// Mutably borrow the pointee.
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: as in get(), plus &mut self guarantees unique access.
        unsafe { &mut *self.untagged() }
    }

    /// Replace the tag, keeping the pointee.
    ///
    /// # Errors
    ///
    /// Fails (returning `tag` back) if `tag` does not fit in the alignment bits.
    pub fn set_tag(&mut self, tag: usize) -> Result<(), usize> {
        if tag & !Self::TAG_MASK != 0 {
            return Err(tag);
        }
        let p = self.untagged();
        // SAFETY: p is the valid non-null pointee pointer.
        self.raw = unsafe { NonNull::new_unchecked((p as usize | tag) as *mut T) };
        Ok(())
    }

    /// Recover the owned box and the tag.
    pub fn into_parts(self) -> (Box<T>, usize) {
        let tag = self.tag();
        let p = self.untagged();
        std::mem::forget(self);
        // SAFETY: p is the pointer Box::into_raw produced in new(); forgetting self
        // transfers ownership to the reconstituted Box exactly once.
        (unsafe { Box::from_raw(p) }, tag)
    }
}

impl<T> Drop for TaggedPtr<T> {
    fn drop(&mut self) {
        // SAFETY: see into_parts; drop owns the pointee here.
        unsafe { drop(Box::from_raw(self.untagged())) }
    }
}

impl<T: fmt::Debug> fmt::Debug for TaggedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaggedPtr")
            .field("tag", &self.tag())
            .field("value", self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let tp = TaggedPtr::new(Box::new(123u64), 3).unwrap();
        assert_eq!(tp.tag(), 3);
        assert_eq!(*tp.get(), 123);
        let (b, tag) = tp.into_parts();
        assert_eq!(*b, 123);
        assert_eq!(tag, 3);
    }

    #[test]
    fn oversized_tag_rejected() {
        let err = TaggedPtr::new(Box::new(1u8), 1);
        assert!(err.is_err(), "u8 has no alignment bits to spare");
        let b = err.unwrap_err();
        assert_eq!(*b, 1);
    }

    #[test]
    fn set_tag_and_mutate() {
        let mut tp = TaggedPtr::new(Box::new(7u32), 0).unwrap();
        tp.set_tag(2).unwrap();
        *tp.get_mut() += 1;
        assert_eq!(tp.tag(), 2);
        assert_eq!(*tp.get(), 8);
        assert_eq!(tp.set_tag(4), Err(4), "u32 alignment gives 2 bits");
    }

    #[test]
    fn drop_runs_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static DROPS: AtomicU32 = AtomicU32::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        // Wrap in a struct with alignment so we get a tag bit.
        #[repr(align(8))]
        #[derive(Debug)]
        struct Aligned(#[allow(dead_code)] D);
        impl std::fmt::Debug for D {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("D")
            }
        }
        let tp = TaggedPtr::new(Box::new(Aligned(D)), 1).unwrap();
        drop(tp);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        let tp = TaggedPtr::new(Box::new(Aligned(D)), 1).unwrap();
        let (b, _) = tp.into_parts();
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn free_bits_matches_alignment() {
        assert_eq!(free_bits::<u8>(), 0);
        assert_eq!(free_bits::<u32>(), 2);
        assert_eq!(free_bits::<u64>(), 3);
    }

    #[test]
    fn send_sync_mirror_box() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<TaggedPtr<u64>>();
        assert_sync::<TaggedPtr<u64>>();
    }
}
