//! 64-bit NaN boxing.
//!
//! The 64-bit descendant of the paper's software tagging: every value lives in the
//! payload space of quiet IEEE-754 NaNs, so floats are unboxed and everything else is
//! a tagged 48-bit payload. This module implements a self-contained [`NanBox`] over
//! floats, 32-bit integers, booleans, nil, and raw 48-bit "pointer" payloads.
//!
//! ```
//! use tagword::nanbox::NanBox;
//!
//! let f = NanBox::from_f64(1.5);
//! assert_eq!(f.as_f64(), Some(1.5));
//! let i = NanBox::from_i32(-7);
//! assert_eq!(i.as_i32(), Some(-7));
//! assert!(NanBox::from_f64(f64::NAN).as_f64().unwrap().is_nan());
//! ```

use std::fmt;

/// Canonical quiet NaN with zero payload; real NaNs are normalised to this so the
/// payload space is free for boxing.
const CANONICAL_NAN: u64 = 0x7FF8_0000_0000_0000;
/// Boxed (non-float) values set the top 13 bits (sign + exponent + quiet bit) plus a
/// 3-bit type code at bits 50..48, leaving a 48-bit payload.
const BOX_BASE: u64 = 0xFFF8_0000_0000_0000;
const TYPE_SHIFT: u32 = 48;
const PAYLOAD_MASK: u64 = (1 << 48) - 1;

const TYPE_INT: u64 = 1;
const TYPE_BOOL: u64 = 2;
const TYPE_NIL: u64 = 3;
const TYPE_PTR: u64 = 4;

/// The dynamic type of a [`NanBox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NanBoxKind {
    /// An unboxed `f64` (any non-reserved bit pattern).
    Float,
    /// A boxed `i32`.
    Int,
    /// A boxed boolean.
    Bool,
    /// The nil/unit value.
    Nil,
    /// A 48-bit pointer payload.
    Ptr,
}

/// A 64-bit NaN-boxed dynamic value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NanBox(u64);

impl NanBox {
    /// Box a float. NaNs are canonicalised so they can never collide with boxed
    /// payloads.
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            NanBox(CANONICAL_NAN)
        } else {
            NanBox(v.to_bits())
        }
    }

    /// Box a 32-bit integer.
    pub fn from_i32(v: i32) -> Self {
        NanBox(BOX_BASE | (TYPE_INT << TYPE_SHIFT) | u64::from(v as u32))
    }

    /// Box a boolean.
    pub fn from_bool(v: bool) -> Self {
        NanBox(BOX_BASE | (TYPE_BOOL << TYPE_SHIFT) | u64::from(v))
    }

    /// The nil value.
    pub fn nil() -> Self {
        NanBox(BOX_BASE | (TYPE_NIL << TYPE_SHIFT))
    }

    /// Box a 48-bit pointer payload.
    ///
    /// # Errors
    ///
    /// Returns `None` if `p` does not fit in 48 bits (the practical user-space
    /// virtual-address width on the 64-bit platforms NaN boxing targets).
    pub fn from_ptr_bits(p: u64) -> Option<Self> {
        if p & !PAYLOAD_MASK != 0 {
            return None;
        }
        Some(NanBox(BOX_BASE | (TYPE_PTR << TYPE_SHIFT) | p))
    }

    fn is_boxed(self) -> bool {
        self.0 & BOX_BASE == BOX_BASE && self.0 != BOX_BASE
    }

    fn type_code(self) -> u64 {
        (self.0 >> TYPE_SHIFT) & 0b111
    }

    /// The dynamic type of this value.
    pub fn kind(self) -> NanBoxKind {
        if !self.is_boxed() {
            return NanBoxKind::Float;
        }
        match self.type_code() {
            TYPE_INT => NanBoxKind::Int,
            TYPE_BOOL => NanBoxKind::Bool,
            TYPE_NIL => NanBoxKind::Nil,
            TYPE_PTR => NanBoxKind::Ptr,
            _ => NanBoxKind::Float,
        }
    }

    /// The float, if this is a float.
    pub fn as_f64(self) -> Option<f64> {
        (self.kind() == NanBoxKind::Float).then(|| f64::from_bits(self.0))
    }

    /// The integer, if this is a boxed `i32`.
    pub fn as_i32(self) -> Option<i32> {
        (self.kind() == NanBoxKind::Int).then_some((self.0 & 0xFFFF_FFFF) as u32 as i32)
    }

    /// The boolean, if this is a boxed bool.
    pub fn as_bool(self) -> Option<bool> {
        (self.kind() == NanBoxKind::Bool).then_some(self.0 & 1 == 1)
    }

    /// Whether this is nil.
    pub fn is_nil(self) -> bool {
        self.kind() == NanBoxKind::Nil
    }

    /// The pointer payload, if this is a boxed pointer.
    pub fn as_ptr_bits(self) -> Option<u64> {
        (self.kind() == NanBoxKind::Ptr).then_some(self.0 & PAYLOAD_MASK)
    }

    /// Raw bit pattern (for tests and FFI).
    pub fn to_bits(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NanBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            NanBoxKind::Float => write!(f, "NanBox({})", f64::from_bits(self.0)),
            NanBoxKind::Int => write!(f, "NanBox({})", self.as_i32().unwrap()),
            NanBoxKind::Bool => write!(f, "NanBox({})", self.as_bool().unwrap()),
            NanBoxKind::Nil => write!(f, "NanBox(nil)"),
            NanBoxKind::Ptr => write!(f, "NanBox(ptr {:#x})", self.as_ptr_bits().unwrap()),
        }
    }
}

impl From<f64> for NanBox {
    fn from(v: f64) -> Self {
        NanBox::from_f64(v)
    }
}

impl From<i32> for NanBox {
    fn from(v: i32) -> Self {
        NanBox::from_i32(v)
    }
}

impl From<bool> for NanBox {
    fn from(v: bool) -> Self {
        NanBox::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let b = NanBox::from_f64(v);
            assert_eq!(b.kind(), NanBoxKind::Float);
            assert_eq!(b.as_f64(), Some(v));
        }
    }

    #[test]
    fn nan_is_canonicalised_but_stays_nan() {
        let b = NanBox::from_f64(f64::NAN);
        assert_eq!(b.kind(), NanBoxKind::Float);
        assert!(b.as_f64().unwrap().is_nan());
        // A NaN with a poisoned payload must not decode as a boxed value.
        let evil = f64::from_bits(BOX_BASE | (TYPE_INT << TYPE_SHIFT) | 42);
        let b = NanBox::from_f64(evil);
        assert_eq!(b.kind(), NanBoxKind::Float);
    }

    #[test]
    fn int_round_trip() {
        for v in [0, 1, -1, i32::MAX, i32::MIN] {
            let b = NanBox::from_i32(v);
            assert_eq!(b.kind(), NanBoxKind::Int);
            assert_eq!(b.as_i32(), Some(v));
            assert_eq!(b.as_f64(), None);
        }
    }

    #[test]
    fn bool_nil_ptr() {
        assert_eq!(NanBox::from_bool(true).as_bool(), Some(true));
        assert_eq!(NanBox::from_bool(false).as_bool(), Some(false));
        assert!(NanBox::nil().is_nil());
        let p = NanBox::from_ptr_bits(0xdead_beef).unwrap();
        assert_eq!(p.as_ptr_bits(), Some(0xdead_beef));
        assert!(NanBox::from_ptr_bits(1 << 48).is_none());
    }

    #[test]
    fn kinds_are_disjoint() {
        let vals = [
            NanBox::from_f64(3.25),
            NanBox::from_i32(3),
            NanBox::from_bool(true),
            NanBox::nil(),
            NanBox::from_ptr_bits(64).unwrap(),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(i == j, a == b, "{a:?} vs {b:?}");
            }
        }
    }
}
