//! Tagged-word representations for dynamically typed language runtimes.
//!
//! This crate implements the tag-implementation schemes studied in Steenkiste &
//! Hennessy, *Tags and Type Checking in LISP: Hardware and Software Approaches*
//! (ASPLOS 1987), as a standalone library:
//!
//! - [`TagScheme::HighTag5`] — the straightforward PSL-on-MIPS-X scheme: a 5-bit tag
//!   in the most significant bits, 27-bit data, integers encoded so that a short
//!   integer *is* its two's-complement machine representation (paper §2.1).
//! - [`TagScheme::HighTag6`] — the arithmetic-safe 6-bit encoding in which the sum of
//!   two non-integer tags can never masquerade as an integer tag, so a generic add
//!   needs only one type check, on the result (paper §4.2).
//! - [`TagScheme::LowTag2`] — tag in the two low-order bits; word-aligned accesses
//!   drop them for free, eliminating tag removal on memory access (paper §5.2).
//! - [`TagScheme::LowTag3`] — tag in the three low-order bits with even/odd integers
//!   at `000`/`100` and double-word-aligned pointer objects (paper §5.2; the scheme
//!   Lucid Common Lisp used).
//!
//! Beyond the paper's 32-bit schemes, the crate provides the modern descendants that
//! the paper's software-tagging conclusion led to: low-bit [`ptr::TaggedPtr`] tagging
//! of real Rust pointers, and [`nanbox::NanBox`] 64-bit NaN boxing.
//!
//! # Example
//!
//! ```
//! use tagword::{Extracted, TagScheme, Tag, Word};
//!
//! let scheme = TagScheme::HighTag5;
//! let w: Word = scheme.insert(Tag::Pair, 0x1234).unwrap();
//! assert_eq!(scheme.extract(w), Extracted::Exact(Tag::Pair));
//! assert_eq!(scheme.remove(w), 0x1234);
//! // Integers are their own machine representation under HighTag5:
//! assert_eq!(scheme.make_int(-7).unwrap(), (-7i32) as u32);
//! assert_eq!(scheme.int_value(scheme.make_int(-7).unwrap()), Some(-7));
//! ```

#![deny(missing_docs)]

mod cost;
mod scheme;
mod tag;

pub mod nanbox;
pub mod ptr;

pub use cost::{CostModel, OpCost, TagOp, ALL_OPS};
pub use scheme::{Extracted, SchemeError, TagScheme, ALL_SCHEMES};
pub use tag::{Tag, ALL_TAGS};

/// A 32-bit machine word carrying a tagged Lisp item.
pub type Word = u32;
