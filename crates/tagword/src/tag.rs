//! The abstract data-type tags used by the Lisp system.

use std::fmt;

/// The dynamic type of a Lisp item, independent of how a [`TagScheme`] encodes it.
///
/// These are the "data objects most actively used" per the paper (§2.2): numbers,
/// symbols, lists and vectors, plus the handful of auxiliary types any real system
/// needs (floats, strings, compiled code, characters). Structures and strings are
/// implemented on top of vectors, as in PSL.
///
/// [`TagScheme`]: crate::TagScheme
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tag {
    /// A small (fixnum) integer. Positive and negative integers may have distinct
    /// encodings under a given scheme, but both map to this tag.
    Int,
    /// A cons cell (list node).
    Pair,
    /// An interned symbol.
    Symbol,
    /// A heap vector (also the substrate for structures and strings).
    Vector,
    /// A boxed floating-point number.
    Float,
    /// A string (byte vector).
    Str,
    /// A compiled code object / function entry point.
    Code,
    /// A character.
    Char,
}

/// All tags, in a fixed order convenient for tables and exhaustive tests.
pub const ALL_TAGS: [Tag; 8] = [
    Tag::Int,
    Tag::Pair,
    Tag::Symbol,
    Tag::Vector,
    Tag::Float,
    Tag::Str,
    Tag::Code,
    Tag::Char,
];

impl Tag {
    /// Whether items of this type carry immediate data (no heap pointer).
    ///
    /// ```
    /// use tagword::Tag;
    /// assert!(Tag::Int.is_immediate());
    /// assert!(!Tag::Pair.is_immediate());
    /// ```
    pub fn is_immediate(self) -> bool {
        matches!(self, Tag::Int | Tag::Char)
    }

    /// Whether the data part of items of this type is used as a memory address.
    ///
    /// Per paper §5.1, the data part of most Lisp objects is a pointer and "will
    /// always be used as an address"; the exceptions are integers and characters
    /// (immediates) — and symbols, which are compared or used as a table index.
    pub fn is_pointer(self) -> bool {
        !self.is_immediate()
    }

    /// A short lowercase name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Tag::Int => "int",
            Tag::Pair => "pair",
            Tag::Symbol => "symbol",
            Tag::Vector => "vector",
            Tag::Float => "float",
            Tag::Str => "string",
            Tag::Code => "code",
            Tag::Char => "char",
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tags_are_distinct() {
        for (i, a) in ALL_TAGS.iter().enumerate() {
            for b in &ALL_TAGS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn immediates_are_not_pointers() {
        for t in ALL_TAGS {
            assert_ne!(t.is_immediate(), t.is_pointer());
        }
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<_> = ALL_TAGS.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_TAGS.len());
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn display_matches_name() {
        for t in ALL_TAGS {
            assert_eq!(t.to_string(), t.name());
        }
    }
}
