//! An analytical cycle-cost model for tag operations.
//!
//! The real measurements in this repository come from running compiled code on the
//! `mipsx` simulator; this module is the back-of-the-envelope companion: the
//! per-operation cycle counts the paper quotes for a MIPS-X-class RISC, exposed so
//! that users of `tagword` alone can estimate tag-handling budgets.

use crate::scheme::TagScheme;
use crate::tag::Tag;

/// The four primitive tag operations of the paper (§2.1), plus the composite
/// generic-arithmetic operation of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagOp {
    /// Construct a tagged item from data and a tag value.
    Insert,
    /// Clear the tag to obtain a usable pointer or datum.
    Remove,
    /// Clear the tag specifically to form a memory address (may be free).
    RemoveForAddress,
    /// Isolate the tag value for inspection.
    Extract,
    /// Extraction plus comparison with a known tag value plus branch.
    CheckExact,
    /// The integer test (asymmetric under high-tag schemes, §4.1).
    CheckInt,
    /// A full integer-biased generic add: type checks, overflow check, add (§4.2).
    GenericAdd,
}

/// All tag operations, in report order.
pub const ALL_OPS: [TagOp; 7] = [
    TagOp::Insert,
    TagOp::Remove,
    TagOp::RemoveForAddress,
    TagOp::Extract,
    TagOp::CheckExact,
    TagOp::CheckInt,
    TagOp::GenericAdd,
];

/// The cycle cost of one tag operation under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Cycles when the operand is an integer (integers are special-cased by every
    /// scheme in this crate).
    pub int_cycles: u32,
    /// Cycles for any other type.
    pub other_cycles: u32,
}

impl OpCost {
    /// Uniform cost regardless of operand type.
    pub const fn uniform(c: u32) -> Self {
        OpCost {
            int_cycles: c,
            other_cycles: c,
        }
    }
}

/// Cycle-cost model for a scheme on a plain RISC (no tag hardware).
///
/// ```
/// use tagword::{CostModel, TagScheme, TagOp};
/// let m = CostModel::plain(TagScheme::HighTag5);
/// // Paper §3.1: inserting a tag costs two cycles (shift + or), zero for integers.
/// assert_eq!(m.cost(TagOp::Insert).other_cycles, 2);
/// assert_eq!(m.cost(TagOp::Insert).int_cycles, 0);
/// // Paper §4.2: a generic integer add takes 10 cycles.
/// assert_eq!(m.cost(TagOp::GenericAdd).int_cycles, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    scheme: TagScheme,
}

impl CostModel {
    /// Cost model for `scheme` with no hardware tag support.
    pub fn plain(scheme: TagScheme) -> Self {
        CostModel { scheme }
    }

    /// The scheme this model describes.
    pub fn scheme(&self) -> TagScheme {
        self.scheme
    }

    /// Cycles for `op` under this scheme.
    pub fn cost(&self, op: TagOp) -> OpCost {
        use TagOp::*;
        use TagScheme::*;
        match (self.scheme, op) {
            // §3.1: shift tag into place + or; integers need none by construction.
            (HighTag5 | HighTag6, Insert) => OpCost {
                int_cycles: 0,
                other_cycles: 2,
            },
            // Low tags: or-in a small constant (pointer comes back aligned from the
            // allocator); integers shift left by 2.
            (LowTag2 | LowTag3, Insert) => OpCost::uniform(1),

            // §3.2: mask with a register-resident mask; integers are their own rep.
            (HighTag5 | HighTag6, Remove) => OpCost {
                int_cycles: 0,
                other_cycles: 1,
            },
            (LowTag2 | LowTag3, Remove) => OpCost {
                int_cycles: 1,
                other_cycles: 1,
            },

            // §5: using the item as an address. High tags must mask; low tags are
            // dropped by word alignment / folded into the displacement.
            (HighTag5 | HighTag6, RemoveForAddress) => OpCost {
                int_cycles: 0,
                other_cycles: 1,
            },
            (LowTag2 | LowTag3, RemoveForAddress) => OpCost::uniform(0),

            // §3.3: one logical shift (high) or one and-immediate (low).
            (_, Extract) => OpCost::uniform(1),

            // §3.4: extraction + compare(+branch). We count compare+branch as one
            // cycle here; unused delay slots are a property of scheduling, measured
            // by the simulator rather than modelled analytically.
            (_, CheckExact) => OpCost::uniform(2),

            // §4.1: high-tag integer test = sign-extend (2 shifts) + compare = 3.
            (HighTag5 | HighTag6, CheckInt) => OpCost::uniform(3),
            // Low tags: and-immediate + compare = 2.
            (LowTag2 | LowTag3, CheckInt) => OpCost::uniform(2),

            // §4.2: 9 cycles of type+overflow checking + 1 add under the plain
            // high-tag encoding; the arithmetic-safe encoding folds everything into
            // one check on the result (add + 3-cycle integer test).
            (HighTag5, GenericAdd) => OpCost {
                int_cycles: 10,
                other_cycles: 10,
            },
            (HighTag6, GenericAdd) => OpCost {
                int_cycles: 4,
                other_cycles: 10,
            },
            // Low tags: two 2-cycle integer tests + overflow-check-as-type-test + add.
            (LowTag2 | LowTag3, GenericAdd) => OpCost {
                int_cycles: 7,
                other_cycles: 10,
            },
        }
    }

    /// Cycles to type-check an item expected to be of type `tag`.
    ///
    /// Escape-encoded types under the low-tag schemes cost an extra header load and
    /// compare (the price §5.2 pays for keeping only 2–3 tag bits).
    pub fn check_cost(&self, tag: Tag) -> u32 {
        if tag == Tag::Int {
            return self.cost(TagOp::CheckInt).int_cycles;
        }
        let base = self.cost(TagOp::CheckExact).other_cycles;
        if self.scheme.has_exact_tag(tag) {
            base
        } else {
            // escape check + header load + header compare
            base + 2
        }
    }

    /// Estimated tag-handling cycles for a workload profile: counts of each tag
    /// operation executed. Useful for quick what-if analysis without a simulation.
    pub fn estimate<'a, I>(&self, ops: I) -> u64
    where
        I: IntoIterator<Item = &'a (TagOp, u64)>,
    {
        ops.into_iter()
            .map(|&(op, n)| u64::from(self.cost(op).other_cycles) * n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ALL_SCHEMES;

    #[test]
    fn low_tag_address_masking_is_free() {
        for s in [TagScheme::LowTag2, TagScheme::LowTag3] {
            let m = CostModel::plain(s);
            assert_eq!(m.cost(TagOp::RemoveForAddress), OpCost::uniform(0));
        }
        let m = CostModel::plain(TagScheme::HighTag5);
        assert_eq!(m.cost(TagOp::RemoveForAddress).other_cycles, 1);
    }

    #[test]
    fn arith_safe_encoding_speeds_up_generic_add() {
        let plain = CostModel::plain(TagScheme::HighTag5);
        let safe = CostModel::plain(TagScheme::HighTag6);
        assert!(safe.cost(TagOp::GenericAdd).int_cycles < plain.cost(TagOp::GenericAdd).int_cycles);
        // but the non-integer path is no better
        assert_eq!(
            safe.cost(TagOp::GenericAdd).other_cycles,
            plain.cost(TagOp::GenericAdd).other_cycles
        );
    }

    #[test]
    fn escape_types_cost_more_to_check() {
        let m = CostModel::plain(TagScheme::LowTag2);
        assert!(m.check_cost(Tag::Vector) > m.check_cost(Tag::Pair));
        let m3 = CostModel::plain(TagScheme::LowTag3);
        assert_eq!(m3.check_cost(Tag::Vector), m3.check_cost(Tag::Pair));
        assert!(m3.check_cost(Tag::Str) > m3.check_cost(Tag::Pair));
    }

    #[test]
    fn estimate_sums_costs() {
        let m = CostModel::plain(TagScheme::HighTag5);
        let profile = [(TagOp::Insert, 10u64), (TagOp::Remove, 5)];
        assert_eq!(m.estimate(&profile), 2 * 10 + 5);
    }

    #[test]
    fn every_op_has_a_cost_under_every_scheme() {
        for s in ALL_SCHEMES {
            let m = CostModel::plain(s);
            for op in ALL_OPS {
                // must not panic; cost is bounded by the 10-cycle generic add
                assert!(m.cost(op).other_cycles <= 10);
            }
        }
    }
}
