//! The tag-implementation schemes compared by the paper.

use std::fmt;

use crate::tag::{Tag, ALL_TAGS};
use crate::Word;

/// Error produced when a value cannot be encoded under a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeError {
    /// The data part does not fit in the scheme's data field.
    DataTooWide {
        /// The offending data value.
        data: u32,
        /// Number of data bits the scheme provides.
        bits: u32,
    },
    /// An integer is outside the scheme's fixnum range.
    IntOutOfRange {
        /// The offending integer.
        value: i32,
        /// Number of signed bits available.
        bits: u32,
    },
    /// A pointer is not aligned as the scheme requires (low-tag schemes).
    Misaligned {
        /// The offending pointer value.
        ptr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// [`TagScheme::insert`] was called with [`Tag::Int`]; use
    /// [`TagScheme::make_int`] instead, because integer encodings are not a simple
    /// tag-OR under every scheme.
    IntViaInsert,
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchemeError::DataTooWide { data, bits } => {
                write!(f, "data {data:#x} does not fit in {bits} bits")
            }
            SchemeError::IntOutOfRange { value, bits } => {
                write!(f, "integer {value} outside {bits}-bit fixnum range")
            }
            SchemeError::Misaligned { ptr, align } => {
                write!(f, "pointer {ptr:#x} not aligned to {align} bytes")
            }
            SchemeError::IntViaInsert => {
                write!(f, "integers must be encoded with make_int, not insert")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// What a tag-field inspection can tell you without touching memory.
///
/// High-tag schemes have a tag value per type, so extraction is always
/// [`Extracted::Exact`]. Low-tag schemes reserve an *escape* combination for the less
/// frequent types, whose precise type lives in a header word of the pointed-to object
/// (paper §5.2); inspecting only the word yields [`Extracted::Escape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extracted {
    /// The tag field identifies the type exactly.
    Exact(Tag),
    /// The tag field is the escape combination; the type is in the object header.
    Escape,
}

impl Extracted {
    /// The exact tag, if the word's tag field determined one.
    pub fn exact(self) -> Option<Tag> {
        match self {
            Extracted::Exact(t) => Some(t),
            Extracted::Escape => None,
        }
    }
}

/// A tag-implementation scheme: where tag bits live in the word and how each
/// [`Tag`] is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagScheme {
    /// Paper §2.1: 5-bit tag in bits 31..27, 27-bit data. Positive integers have tag
    /// 0 and negative integers tag 31, so a fixnum *is* its sign-extended machine
    /// representation and integer arithmetic needs no reformatting.
    HighTag5,
    /// Paper §4.2: 6-bit tag in bits 31..26 with non-integer tags assigned in
    /// `16..=30` so that the sum of two non-integer tags — with a possible carry in
    /// from the data field — can never produce an integer tag (0 or 63) without
    /// overflow. A generic add becomes: add, then one integer check on the result.
    HighTag6,
    /// Paper §5.2: 2-bit tag in bits 1..0. Integers are `v << 2` (tag `00`), pairs
    /// tag `01`, symbols tag `10`, and `11` escapes to a header word. Word-aligned
    /// memory drops the low two address bits, so no tag removal is needed on access.
    LowTag2,
    /// Paper §5.2: 3-bit tag in bits 2..0. Even/odd integers are `000`/`100` (so an
    /// integer is `v << 2`), four three-bit combinations encode pairs, symbols,
    /// vectors and floats, and `011`/`111` escape. Pointer objects are double-word
    /// aligned. This is the Lucid Common Lisp layout.
    LowTag3,
}

/// Every scheme, for exhaustive tests and sweeps.
pub const ALL_SCHEMES: [TagScheme; 4] = [
    TagScheme::HighTag5,
    TagScheme::HighTag6,
    TagScheme::LowTag2,
    TagScheme::LowTag3,
];

const fn sign_extend(w: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((w << shift) as i32) >> shift
}

impl TagScheme {
    /// Number of tag bits the scheme reserves.
    pub fn tag_bits(self) -> u32 {
        match self {
            TagScheme::HighTag5 => 5,
            TagScheme::HighTag6 => 6,
            TagScheme::LowTag2 => 2,
            TagScheme::LowTag3 => 3,
        }
    }

    /// Whether tag bits occupy the most significant end of the word.
    pub fn is_high(self) -> bool {
        matches!(self, TagScheme::HighTag5 | TagScheme::HighTag6)
    }

    /// Number of data bits available to a pointer.
    ///
    /// Low-tag schemes keep the full address space (tag bits overlap alignment
    /// bits), which the paper calls out as "important for large LISP systems".
    pub fn pointer_bits(self) -> u32 {
        match self {
            TagScheme::HighTag5 => 27,
            TagScheme::HighTag6 => 26,
            TagScheme::LowTag2 | TagScheme::LowTag3 => 32,
        }
    }

    /// Number of signed bits in a fixnum.
    pub fn int_bits(self) -> u32 {
        match self {
            TagScheme::HighTag5 => 27,
            TagScheme::HighTag6 => 26,
            TagScheme::LowTag2 | TagScheme::LowTag3 => 30,
        }
    }

    /// Smallest representable fixnum.
    pub fn min_int(self) -> i32 {
        -(1 << (self.int_bits() - 1))
    }

    /// Largest representable fixnum.
    pub fn max_int(self) -> i32 {
        (1 << (self.int_bits() - 1)) - 1
    }

    /// Required byte alignment for heap pointers under this scheme.
    pub fn pointer_align(self) -> u32 {
        match self {
            // High-tag pointers address a word-aligned heap.
            TagScheme::HighTag5 | TagScheme::HighTag6 => 4,
            TagScheme::LowTag2 => 4,
            TagScheme::LowTag3 => 8,
        }
    }

    /// The raw tag-field value used for `tag`, or `None` if the scheme encodes the
    /// type through the escape combination (low-tag schemes) or if the tag is
    /// [`Tag::Int`] under a scheme with asymmetric integer tags.
    pub fn raw_tag(self, tag: Tag) -> Option<u32> {
        match self {
            TagScheme::HighTag5 => Some(match tag {
                Tag::Int => return None, // 0 for positive, 31 for negative
                Tag::Pair => 1,
                Tag::Symbol => 2,
                Tag::Vector => 3,
                Tag::Float => 4,
                Tag::Str => 5,
                Tag::Code => 6,
                Tag::Char => 7,
            }),
            TagScheme::HighTag6 => Some(match tag {
                Tag::Int => return None, // 0 / 63
                Tag::Pair => 16,
                Tag::Symbol => 17,
                Tag::Vector => 18,
                Tag::Float => 19,
                Tag::Str => 20,
                Tag::Code => 21,
                Tag::Char => 22,
            }),
            TagScheme::LowTag2 => match tag {
                Tag::Int => Some(0),
                Tag::Pair => Some(1),
                Tag::Symbol => Some(2),
                _ => None, // escape
            },
            TagScheme::LowTag3 => match tag {
                Tag::Int => Some(0), // and 4 for odd integers
                Tag::Pair => Some(1),
                Tag::Symbol => Some(2),
                Tag::Vector => Some(5),
                Tag::Float => Some(6),
                _ => None, // escape
            },
        }
    }

    /// The escape tag-field value, if the scheme has one.
    pub fn escape_tag(self) -> Option<u32> {
        match self {
            TagScheme::HighTag5 | TagScheme::HighTag6 => None,
            TagScheme::LowTag2 => Some(3),
            // Both 011 and 111 escape; 3 is the canonical one we emit.
            TagScheme::LowTag3 => Some(3),
        }
    }

    /// Whether `tag` can be identified from the word alone (no header load).
    pub fn has_exact_tag(self, tag: Tag) -> bool {
        tag == Tag::Int || self.raw_tag(tag).is_some()
    }

    /// Tags that must go through the escape encoding under this scheme.
    pub fn escape_tags(self) -> Vec<Tag> {
        ALL_TAGS
            .iter()
            .copied()
            .filter(|&t| !self.has_exact_tag(t))
            .collect()
    }

    /// Construct a tagged word from a non-integer `tag` and its data part
    /// (a heap pointer for pointer types, a code point for [`Tag::Char`]).
    ///
    /// # Errors
    ///
    /// - [`SchemeError::IntViaInsert`] if `tag` is [`Tag::Int`];
    /// - [`SchemeError::DataTooWide`] if `data` does not fit the data field
    ///   (high-tag schemes);
    /// - [`SchemeError::Misaligned`] if a pointer's low bits collide with the tag
    ///   field (low-tag schemes).
    pub fn insert(self, tag: Tag, data: u32) -> Result<Word, SchemeError> {
        if tag == Tag::Int {
            return Err(SchemeError::IntViaInsert);
        }
        match self {
            TagScheme::HighTag5 | TagScheme::HighTag6 => {
                let bits = 32 - self.tag_bits();
                if data >> bits != 0 {
                    return Err(SchemeError::DataTooWide { data, bits });
                }
                let raw = self.raw_tag(tag).expect("non-int high tags are exact");
                Ok((raw << bits) | data)
            }
            TagScheme::LowTag2 | TagScheme::LowTag3 => {
                let align = if tag.is_pointer() {
                    self.pointer_align()
                } else {
                    4
                };
                if tag.is_pointer() && !data.is_multiple_of(align) {
                    return Err(SchemeError::Misaligned { ptr: data, align });
                }
                let raw = match self.raw_tag(tag) {
                    Some(raw) => raw,
                    None => self.escape_tag().expect("low-tag schemes have an escape"),
                };
                if !tag.is_pointer() {
                    // Chars ride in the data field above the tag bits.
                    let bits = 32 - self.tag_bits();
                    if data >> bits != 0 {
                        return Err(SchemeError::DataTooWide { data, bits });
                    }
                    return Ok((data << self.tag_bits()) | raw);
                }
                Ok(data | raw)
            }
        }
    }

    /// Encode a fixnum.
    ///
    /// Under the high-tag schemes the result is the sign-extended two's-complement
    /// representation of `value` itself (paper §2.1), so integer arithmetic can use
    /// the processor's instructions directly. Under the low-tag schemes the result
    /// is `value << 2`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::IntOutOfRange`] if `value` is outside
    /// [`min_int`](Self::min_int)`..=`[`max_int`](Self::max_int).
    pub fn make_int(self, value: i32) -> Result<Word, SchemeError> {
        if value < self.min_int() || value > self.max_int() {
            return Err(SchemeError::IntOutOfRange {
                value,
                bits: self.int_bits(),
            });
        }
        match self {
            TagScheme::HighTag5 | TagScheme::HighTag6 => Ok(value as u32),
            TagScheme::LowTag2 | TagScheme::LowTag3 => Ok((value as u32) << 2),
        }
    }

    /// Whether `word` encodes a fixnum.
    pub fn is_int(self, word: Word) -> bool {
        match self {
            TagScheme::HighTag5 => sign_extend(word, 27) as u32 == word,
            TagScheme::HighTag6 => sign_extend(word, 26) as u32 == word,
            TagScheme::LowTag2 | TagScheme::LowTag3 => word & 0b11 == 0,
        }
    }

    /// Decode a fixnum, or `None` if `word` is not an integer.
    pub fn int_value(self, word: Word) -> Option<i32> {
        if !self.is_int(word) {
            return None;
        }
        match self {
            TagScheme::HighTag5 | TagScheme::HighTag6 => Some(word as i32),
            TagScheme::LowTag2 | TagScheme::LowTag3 => Some((word as i32) >> 2),
        }
    }

    /// Inspect the tag field of `word`.
    ///
    /// Returns [`Extracted::Escape`] for low-tag escape combinations, whose exact
    /// type requires a header load. Unknown high-tag values (never produced by this
    /// library) also map onto the nearest meaning: they are reported as
    /// [`Extracted::Escape`].
    pub fn extract(self, word: Word) -> Extracted {
        if self.is_int(word) {
            return Extracted::Exact(Tag::Int);
        }
        match self {
            TagScheme::HighTag5 => match word >> 27 {
                1 => Extracted::Exact(Tag::Pair),
                2 => Extracted::Exact(Tag::Symbol),
                3 => Extracted::Exact(Tag::Vector),
                4 => Extracted::Exact(Tag::Float),
                5 => Extracted::Exact(Tag::Str),
                6 => Extracted::Exact(Tag::Code),
                7 => Extracted::Exact(Tag::Char),
                _ => Extracted::Escape,
            },
            TagScheme::HighTag6 => match word >> 26 {
                16 => Extracted::Exact(Tag::Pair),
                17 => Extracted::Exact(Tag::Symbol),
                18 => Extracted::Exact(Tag::Vector),
                19 => Extracted::Exact(Tag::Float),
                20 => Extracted::Exact(Tag::Str),
                21 => Extracted::Exact(Tag::Code),
                22 => Extracted::Exact(Tag::Char),
                _ => Extracted::Escape,
            },
            TagScheme::LowTag2 => match word & 0b11 {
                1 => Extracted::Exact(Tag::Pair),
                2 => Extracted::Exact(Tag::Symbol),
                _ => Extracted::Escape,
            },
            TagScheme::LowTag3 => match word & 0b111 {
                1 => Extracted::Exact(Tag::Pair),
                2 => Extracted::Exact(Tag::Symbol),
                5 => Extracted::Exact(Tag::Vector),
                6 => Extracted::Exact(Tag::Float),
                _ => Extracted::Escape,
            },
        }
    }

    /// Strip the tag, recovering the data part (a pointer, code point, or for
    /// integers the value's machine representation).
    ///
    /// For high-tag schemes this is the masking operation the paper charges one
    /// cycle for (§3.2); for low-tag schemes it masks the low bits — though on a
    /// word-aligned memory system even that is unnecessary for addressing, which is
    /// the point of §5.2.
    pub fn remove(self, word: Word) -> u32 {
        match self {
            TagScheme::HighTag5 => word & 0x07FF_FFFF,
            TagScheme::HighTag6 => word & 0x03FF_FFFF,
            TagScheme::LowTag2 => word & !0b11,
            TagScheme::LowTag3 => word & !0b111,
        }
    }

    /// Whether a memory system that ignores the scheme's tag-bit positions in
    /// addresses makes explicit tag removal unnecessary for pointer use.
    ///
    /// True for low-tag schemes on word-aligned memory (the low address bits are
    /// dropped anyway) and for high-tag schemes only when the paper's
    /// "loads and stores that ignore the tag" hardware is present.
    pub fn free_address_masking(self) -> bool {
        match self {
            TagScheme::HighTag5 | TagScheme::HighTag6 => false,
            // LowTag2 tags sit entirely inside the word-alignment bits. LowTag3's
            // bit 2 is folded into the load/store displacement by the compiler.
            TagScheme::LowTag2 | TagScheme::LowTag3 => true,
        }
    }

    /// The displacement correction a compiler must fold into loads/stores that go
    /// through a tagged pointer of type `tag` without removing the tag, in bytes.
    ///
    /// E.g. under [`TagScheme::LowTag2`] a `car` through a pair pointer `p|01` is
    /// `load p, -1+0` and `cdr` is `load p, -1+4` (paper §5.2, the T approach).
    /// Returns `None` when the tag cannot be folded (high-tag schemes, or escape
    /// types whose raw tag is not statically known).
    pub fn fold_displacement(self, tag: Tag) -> Option<i32> {
        if !tag.is_pointer() {
            return None;
        }
        match self {
            TagScheme::HighTag5 | TagScheme::HighTag6 => None,
            TagScheme::LowTag2 | TagScheme::LowTag3 => {
                let raw = self.raw_tag(tag).or(self.escape_tag())?;
                Some(-(raw as i32))
            }
        }
    }

    /// Verify the §4.2 arithmetic-safety property: for every pair of non-integer
    /// tag values `(a, b)` and carry-in `c ∈ {0,1}`, `a + b + c` (mod tag space)
    /// is not an integer tag. Only meaningful — and only true — for
    /// [`TagScheme::HighTag6`].
    pub fn is_arith_safe(self) -> bool {
        let bits = self.tag_bits();
        if !self.is_high() {
            return false;
        }
        let modulus = 1u32 << bits;
        let int_tags: &[u32] = &[0, modulus - 1];
        let non_int: Vec<u32> = ALL_TAGS.iter().filter_map(|&t| self.raw_tag(t)).collect();
        // Also mixed sums: int tag + non-int tag must stay non-integer.
        for &a in &non_int {
            for b in non_int.iter().copied().chain(int_tags.iter().copied()) {
                for c in 0..=1u32 {
                    let sum = (a + b + c) % modulus;
                    if int_tags.contains(&sum) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TagScheme::HighTag5 => "high5",
            TagScheme::HighTag6 => "high6",
            TagScheme::LowTag2 => "low2",
            TagScheme::LowTag3 => "low3",
        }
    }
}

impl fmt::Display for TagScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high5_int_is_machine_representation() {
        let s = TagScheme::HighTag5;
        for v in [-1, 0, 1, 42, -42, s.min_int(), s.max_int()] {
            let w = s.make_int(v).unwrap();
            assert_eq!(w, v as u32, "fixnum {v} must be its own two's complement");
            assert!(s.is_int(w));
            assert_eq!(s.int_value(w), Some(v));
        }
    }

    #[test]
    fn high5_negative_int_has_all_ones_tag() {
        let s = TagScheme::HighTag5;
        let w = s.make_int(-5).unwrap();
        assert_eq!(w >> 27, 31);
        let w = s.make_int(5).unwrap();
        assert_eq!(w >> 27, 0);
    }

    #[test]
    fn int_range_is_enforced() {
        for s in ALL_SCHEMES {
            assert!(s.make_int(s.max_int()).is_ok());
            assert!(s.make_int(s.min_int()).is_ok());
            assert!(matches!(
                s.make_int(s.max_int() + 1),
                Err(SchemeError::IntOutOfRange { .. })
            ));
            assert!(matches!(
                s.make_int(s.min_int() - 1),
                Err(SchemeError::IntOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn insert_rejects_int() {
        for s in ALL_SCHEMES {
            assert_eq!(s.insert(Tag::Int, 0), Err(SchemeError::IntViaInsert));
        }
    }

    #[test]
    fn insert_extract_remove_round_trip_pairs() {
        for s in ALL_SCHEMES {
            let ptr = 0x1000u32; // aligned for every scheme
            let w = s.insert(Tag::Pair, ptr).unwrap();
            assert_eq!(s.extract(w), Extracted::Exact(Tag::Pair));
            assert_eq!(s.remove(w), ptr);
            assert!(!s.is_int(w));
        }
    }

    #[test]
    fn low2_escape_covers_vectors() {
        let s = TagScheme::LowTag2;
        let w = s.insert(Tag::Vector, 0x2000).unwrap();
        assert_eq!(s.extract(w), Extracted::Escape);
        assert_eq!(s.remove(w), 0x2000);
        assert!(s.escape_tags().contains(&Tag::Vector));
    }

    #[test]
    fn low3_exact_vector_and_escape_string() {
        let s = TagScheme::LowTag3;
        let w = s.insert(Tag::Vector, 0x2000).unwrap();
        assert_eq!(s.extract(w), Extracted::Exact(Tag::Vector));
        let w = s.insert(Tag::Str, 0x2000).unwrap();
        assert_eq!(s.extract(w), Extracted::Escape);
    }

    #[test]
    fn low3_requires_double_word_alignment() {
        let s = TagScheme::LowTag3;
        assert!(matches!(
            s.insert(Tag::Pair, 0x1004),
            Err(SchemeError::Misaligned { .. })
        ));
        assert!(s.insert(Tag::Pair, 0x1008).is_ok());
    }

    #[test]
    fn low_tags_keep_full_address_space() {
        assert_eq!(TagScheme::LowTag2.pointer_bits(), 32);
        assert_eq!(TagScheme::LowTag3.pointer_bits(), 32);
        assert_eq!(TagScheme::HighTag5.pointer_bits(), 27);
    }

    #[test]
    fn high6_is_arith_safe_and_others_are_not() {
        assert!(TagScheme::HighTag6.is_arith_safe());
        assert!(!TagScheme::HighTag5.is_arith_safe());
        assert!(!TagScheme::LowTag2.is_arith_safe());
        assert!(!TagScheme::LowTag3.is_arith_safe());
    }

    #[test]
    fn low_int_encoding_is_shifted() {
        for s in [TagScheme::LowTag2, TagScheme::LowTag3] {
            assert_eq!(s.make_int(3).unwrap(), 12);
            assert_eq!(s.int_value(12), Some(3));
            assert_eq!(s.make_int(-1).unwrap(), (-4i32) as u32);
            assert_eq!(s.int_value((-4i32) as u32), Some(-1));
        }
    }

    #[test]
    fn low3_even_and_odd_integer_tags() {
        let s = TagScheme::LowTag3;
        assert_eq!(s.make_int(2).unwrap() & 0b111, 0b000, "even int tag 000");
        assert_eq!(s.make_int(3).unwrap() & 0b111, 0b100, "odd int tag 100");
    }

    #[test]
    fn fold_displacement_matches_raw_tag() {
        assert_eq!(TagScheme::LowTag2.fold_displacement(Tag::Pair), Some(-1));
        assert_eq!(TagScheme::LowTag3.fold_displacement(Tag::Vector), Some(-5));
        assert_eq!(TagScheme::HighTag5.fold_displacement(Tag::Pair), None);
        assert_eq!(TagScheme::LowTag2.fold_displacement(Tag::Int), None);
    }

    #[test]
    fn data_too_wide_is_rejected_high() {
        let s = TagScheme::HighTag5;
        assert!(matches!(
            s.insert(Tag::Pair, 1 << 27),
            Err(SchemeError::DataTooWide { .. })
        ));
    }

    #[test]
    fn char_is_immediate_everywhere() {
        for s in ALL_SCHEMES {
            let w = s.insert(Tag::Char, 'A' as u32).unwrap();
            match s.extract(w) {
                Extracted::Exact(Tag::Char) | Extracted::Escape => {}
                other => panic!("char extraction produced {other:?}"),
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = SchemeError::IntOutOfRange {
            value: 1 << 28,
            bits: 27,
        };
        assert!(e.to_string().contains("27-bit"));
    }
}
