//! Property-based tests for tag schemes.

use proptest::prelude::*;
use tagword::{Extracted, Tag, TagScheme, ALL_SCHEMES};

fn schemes() -> impl Strategy<Value = TagScheme> {
    prop::sample::select(ALL_SCHEMES.to_vec())
}

fn pointer_tags() -> impl Strategy<Value = Tag> {
    prop::sample::select(vec![
        Tag::Pair,
        Tag::Symbol,
        Tag::Vector,
        Tag::Float,
        Tag::Str,
        Tag::Code,
    ])
}

proptest! {
    /// make_int then int_value is the identity over the whole fixnum range.
    #[test]
    fn int_round_trip(s in schemes(), v in any::<i32>()) {
        let v = v.clamp(s.min_int(), s.max_int());
        let w = s.make_int(v).unwrap();
        prop_assert!(s.is_int(w));
        prop_assert_eq!(s.int_value(w), Some(v));
        prop_assert_eq!(s.extract(w), Extracted::Exact(Tag::Int));
    }

    /// Out-of-range integers are always rejected.
    #[test]
    fn int_out_of_range_rejected(s in schemes(), v in any::<i32>()) {
        prop_assume!(v < s.min_int() || v > s.max_int());
        prop_assert!(s.make_int(v).is_err());
    }

    /// insert then remove recovers the pointer; extract agrees with the inserted
    /// tag (exactly, or through the escape for low-tag escape types).
    #[test]
    fn pointer_round_trip(s in schemes(), t in pointer_tags(), raw in 0u32..(1 << 24)) {
        let align = s.pointer_align();
        let ptr = (raw / align) * align;
        let w = s.insert(t, ptr).unwrap();
        prop_assert_eq!(s.remove(w), ptr);
        match s.extract(w) {
            Extracted::Exact(got) => prop_assert_eq!(got, t),
            Extracted::Escape => prop_assert!(!s.has_exact_tag(t)),
        }
        // a pointer word is never mistaken for an integer...
        if ptr != 0 || s.raw_tag(t).map(|r| r != 0).unwrap_or(true) {
            prop_assert!(!s.is_int(w));
        }
    }

    /// Tagged pointers of different exact types never alias the same word.
    #[test]
    fn distinct_tags_distinct_words(s in schemes(), raw in 1u32..(1 << 20)) {
        let align = s.pointer_align();
        let ptr = (raw / align) * align;
        let mut words = vec![];
        for t in [Tag::Pair, Tag::Symbol, Tag::Vector, Tag::Str] {
            if s.has_exact_tag(t) {
                words.push(s.insert(t, ptr).unwrap());
            }
        }
        words.sort_unstable();
        let before = words.len();
        words.dedup();
        prop_assert_eq!(words.len(), before);
    }

    /// The §4.2 arithmetic-safety property, exercised dynamically: adding any two
    /// valid HighTag6 fixnums either yields the correct fixnum or a word whose
    /// integer test fails (signalling overflow); and adding any non-integer word to
    /// anything never passes the integer test.
    #[test]
    fn high6_add_safety(a in any::<i32>(), b in any::<i32>()) {
        let s = TagScheme::HighTag6;
        let a = a.clamp(s.min_int(), s.max_int());
        let b = b.clamp(s.min_int(), s.max_int());
        let wa = s.make_int(a).unwrap();
        let wb = s.make_int(b).unwrap();
        let sum = wa.wrapping_add(wb);
        let exact = i64::from(a) + i64::from(b);
        if exact >= i64::from(s.min_int()) && exact <= i64::from(s.max_int()) {
            prop_assert!(s.is_int(sum));
            prop_assert_eq!(s.int_value(sum), Some(exact as i32));
        } else {
            prop_assert!(!s.is_int(sum), "overflowed add must fail the integer test");
        }
    }

    /// HighTag6: non-integer plus anything never looks like an integer.
    #[test]
    fn high6_non_int_add_never_int(t in pointer_tags(), raw in 0u32..(1 << 20), v in any::<i32>()) {
        let s = TagScheme::HighTag6;
        let ptr = (raw / 4) * 4;
        let wp = s.insert(t, ptr).unwrap();
        let v = v.clamp(s.min_int(), s.max_int());
        let wi = s.make_int(v).unwrap();
        prop_assert!(!s.is_int(wp.wrapping_add(wi)));
        let wp2 = s.insert(Tag::Pair, ptr).unwrap();
        prop_assert!(!s.is_int(wp.wrapping_add(wp2)));
    }

    /// Low-tag displacement folding: loading through `ptr|tag` at displacement
    /// `fold + k` addresses the same word as loading through `ptr` at `k`.
    #[test]
    fn fold_displacement_equivalence(s in prop::sample::select(vec![TagScheme::LowTag2, TagScheme::LowTag3]),
                                     t in prop::sample::select(vec![Tag::Pair, Tag::Symbol]),
                                     raw in 0u32..(1 << 20), k in 0i32..16) {
        let align = s.pointer_align();
        let ptr = (raw / align) * align;
        let w = s.insert(t, ptr).unwrap();
        let fold = s.fold_displacement(t).unwrap();
        let via_tagged = (w as i64) + i64::from(fold) + i64::from(k * 4);
        let via_clean = (ptr as i64) + i64::from(k * 4);
        prop_assert_eq!(via_tagged, via_clean);
    }
}

#[test]
fn nanbox_round_trip_floats_property() {
    use tagword::nanbox::NanBox;
    // deterministic sweep over interesting bit patterns
    for bits in [
        0u64,
        1,
        0x3FF0_0000_0000_0000,
        0x7FEF_FFFF_FFFF_FFFF,
        0x8000_0000_0000_0001,
    ] {
        let v = f64::from_bits(bits);
        if v.is_nan() {
            continue;
        }
        assert_eq!(NanBox::from_f64(v).as_f64(), Some(v));
    }
}
