//! Quickstart: compile a Lisp program, run it on the simulated MIPS-X, and see
//! where the cycles went — including the tag-handling breakdown the paper is
//! about.
//!
//! Run with: `cargo run --release --example quickstart`

use tags_repro::lisp::{compile, run, CheckingMode, Options};
use tags_repro::mipsx::TagOpKind;
use tags_repro::tagword::{Tag, TagScheme};

fn main() {
    // --- the tagword library on its own --------------------------------------
    let scheme = TagScheme::HighTag5;
    let pair = scheme.insert(Tag::Pair, 0x1000).expect("pointer fits");
    println!("HighTag5 pair at 0x1000 tags as {pair:#010x}");
    println!("  extract -> {:?}", scheme.extract(pair));
    println!("  remove  -> {:#x}", scheme.remove(pair));
    println!(
        "  fixnum -7 is its own machine word: {:#010x}",
        scheme.make_int(-7).unwrap()
    );
    println!();

    // --- compile and simulate a program ---------------------------------------
    let source = r#"
        (defun fib (n)
          (if (lessp n 2) n
            (plus (fib (sub1 n)) (fib (difference n 2)))))
        (print (fib 15))
    "#;

    for checking in [CheckingMode::None, CheckingMode::Full] {
        let opts = Options::new(scheme, checking);
        let compiled = compile(source, &opts).expect("compiles");
        let outcome = run(&compiled, 100_000_000).expect("runs");
        println!(
            "fib(15) with checking={checking:?}: output {:?}",
            outcome.output.trim()
        );
        println!("  cycles: {}", outcome.stats.cycles);
        for op in [
            TagOpKind::Insert,
            TagOpKind::Remove,
            TagOpKind::Extract,
            TagOpKind::Check,
        ] {
            println!("  {op:?}: {:.2}% of time", outcome.stats.tag_op_percent(op));
        }
        println!();
    }
}
