use std::fs;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only: Option<&str> = args.get(1).map(|s| s.as_str());
    let cases = [
        ("inter", "inter.lisp", 768u32 << 10),
        ("deduce", "deduce.lisp", 768 << 10),
        ("rat", "rat.lisp", 768 << 10),
        ("comp", "comp.lisp", 768 << 10),
        ("opt", "opt.lisp", 768 << 10),
        ("frl", "frl.lisp", 768 << 10),
        ("boyer", "boyer.lisp", 768 << 10),
        ("brow", "brow.lisp", 768 << 10),
        ("trav", "trav.lisp", 768 << 10),
    ];
    for (name, file, heap) in cases {
        if let Some(o) = only {
            if o != name {
                continue;
            }
        }
        let src = fs::read_to_string(format!("crates/programs/lisp/{file}")).unwrap();
        let opts = lisp::Options {
            heap_semi_bytes: heap,
            ..lisp::Options::default()
        };
        match lisp::compile(&src, &opts) {
            Ok(c) => match lisp::run(&c, 2_000_000_000) {
                Ok(o) => {
                    println!(
                        "=== {name}: halt={} cycles={} ===\n{}",
                        o.halt_code, o.stats.cycles, o.output
                    );
                    if o.halt_code == 0 && name != "inter" && name != "boyer" {
                        fs::write(format!("crates/programs/expected/{name}.txt"), &o.output)
                            .unwrap();
                    }
                }
                Err(e) => println!("=== {name}: RUN ERROR {e}"),
            },
            Err(e) => println!("=== {name}: COMPILE ERROR {e}"),
        }
    }
}
