//! Scheme tour: run one benchmark under all four tag schemes and both checking
//! modes, and compare cycle counts and tag-handling shares — the heart of the
//! paper's software-vs-software comparison.
//!
//! Run with: `cargo run --release --example scheme_tour [benchmark]`

use tags_repro::mipsx::TagOpKind;
use tags_repro::tagstudy::{CheckingMode, Config, Session};
use tags_repro::tagword::ALL_SCHEMES;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "boyer".to_string());
    if tags_repro::programs::by_name(&name).is_none() {
        eprintln!(
            "unknown benchmark {name}; pick one of: {}",
            tags_repro::programs::all()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }

    // One batch of all eight (scheme, mode) points; the session runs them on
    // its worker pool and hands back results in request order.
    let mut session = Session::new();
    let name_ref = name.as_str();
    let requests: Vec<(&str, Config)> = [CheckingMode::None, CheckingMode::Full]
        .iter()
        .flat_map(|&checking| {
            ALL_SCHEMES
                .into_iter()
                .map(move |scheme| (name_ref, Config::new(scheme, checking)))
        })
        .collect();
    let measurements = session.measure_many(&requests).expect("benchmarks run");
    let mut results = measurements.iter();

    println!("benchmark: {name}\n");
    println!(
        "{:<7} {:<6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scheme", "check", "cycles", "insert%", "remove%", "extract%", "check%", "vs high5"
    );
    for checking in [CheckingMode::None, CheckingMode::Full] {
        let mut base_cycles = None;
        for scheme in ALL_SCHEMES {
            let m = results.next().expect("one result per request");
            let base = *base_cycles.get_or_insert(m.stats.cycles);
            let rel = 100.0 * (base as f64 - m.stats.cycles as f64) / base as f64;
            println!(
                "{:<7} {:<6} {:>12} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>+8.2}%",
                scheme.to_string(),
                format!("{checking:?}"),
                m.stats.cycles,
                m.stats.tag_op_percent(TagOpKind::Insert),
                m.stats.tag_op_percent(TagOpKind::Remove),
                m.stats.tag_op_percent(TagOpKind::Extract),
                m.stats.tag_op_percent(TagOpKind::Check),
                rel,
            );
        }
        println!();
    }
    println!("(positive 'vs high5' = cycles saved relative to the paper's baseline scheme)");
    eprint!("{}", session.summary());
}
