//! GC pressure visualizer: run the deductive retriever with shrinking
//! semispaces and watch the copying collector eat the cycle budget — the
//! `dedgc` phenomenon from the paper's benchmark table.
//!
//! Run with: `cargo run --release --example gc_visualizer`

use tags_repro::lisp::{self, Options};

fn main() {
    let b = tags_repro::programs::by_name("deduce").expect("deduce exists");
    let sizes: [u32; 7] = [
        768 << 10,
        256 << 10,
        64 << 10,
        32 << 10,
        24 << 10,
        20 << 10,
        19 << 10,
    ];

    println!("deduce under shrinking semispaces (no run-time checking):\n");
    println!(
        "{:>9} {:>12} {:>9}  relative time",
        "semispace", "cycles", "overhead"
    );
    let mut base = None;
    for semi in sizes {
        let opts = Options {
            heap_semi_bytes: semi,
            ..Options::default()
        };
        let compiled = lisp::compile(b.source, &opts).expect("compiles");
        match lisp::run(&compiled, 2_000_000_000) {
            Ok(o) if o.halt_code == 0 => {
                let b0 = *base.get_or_insert(o.stats.cycles);
                let over = 100.0 * (o.stats.cycles as f64 - b0 as f64) / b0 as f64;
                let bar = "#".repeat((o.stats.cycles * 48 / (b0 * 2)) as usize);
                println!(
                    "{:>8}K {:>12} {over:>8.1}%  {bar}",
                    semi >> 10,
                    o.stats.cycles
                );
            }
            Ok(o) => println!("{:>8}K  out of memory (exit {})", semi >> 10, o.halt_code),
            Err(e) => println!("{:>8}K  simulation error: {e}", semi >> 10),
        }
    }
    println!(
        "\nAll the extra cycles are the copying collector running inside the\n\
         simulation; `dedgc` in the benchmark suite pins the semispace at {}K.",
        tags_repro::programs::by_name("dedgc")
            .unwrap()
            .heap_semi_bytes
            >> 10
    );
}
