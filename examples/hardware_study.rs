//! Hardware study: one benchmark under every hardware support level of the
//! paper's Table 2 — from stock RISC to the maximal tagged configuration.
//!
//! Run with: `cargo run --release --example hardware_study [benchmark]`

use tags_repro::mipsx::{HwConfig, ParallelCheck};
use tags_repro::tagstudy::{CheckingMode, Config, Session};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "deduce".to_string());
    if tags_repro::programs::by_name(&name).is_none() {
        eprintln!("unknown benchmark {name}");
        std::process::exit(1);
    }

    let rows: Vec<(&str, HwConfig)> = vec![
        ("stock RISC (baseline)", HwConfig::plain()),
        ("loads/stores ignore tags", HwConfig::with_address_drop(5)),
        ("tag-field branch", HwConfig::with_tag_branch()),
        (
            "both of the above",
            HwConfig {
                tag_branch: true,
                ..HwConfig::with_address_drop(5)
            },
        ),
        ("generic-arithmetic traps", HwConfig::with_generic_arith()),
        (
            "checked list access",
            HwConfig::with_parallel_check(ParallelCheck::Lists),
        ),
        (
            "checked all access",
            HwConfig::with_parallel_check(ParallelCheck::All),
        ),
        ("maximal (paper row 7)", HwConfig::maximal(5)),
        ("SPUR-like (§7)", HwConfig::spur(5)),
    ];

    // Batch all nine configurations up front so the session's worker pool can
    // measure them concurrently.
    let mut session = Session::new();
    let requests: Vec<(&str, Config)> = rows
        .iter()
        .map(|(_, hw)| {
            (
                name.as_str(),
                Config::baseline(CheckingMode::Full).with_hw(*hw),
            )
        })
        .collect();
    let measurements = session.measure_many(&requests).expect("benchmarks run");

    println!("benchmark: {name} (HighTag5, full run-time checking)\n");
    println!(
        "{:<28} {:>12} {:>10} {:>8} {:>7}",
        "hardware", "cycles", "saved", "traps", "noops"
    );
    let mut base = None;
    for ((label, _), m) in rows.iter().zip(&measurements) {
        let b = *base.get_or_insert(m.stats.cycles);
        let saved = 100.0 * (b as f64 - m.stats.cycles as f64) / b as f64;
        println!(
            "{label:<28} {:>12} {saved:>9.2}% {:>8} {:>7}",
            m.stats.cycles,
            m.stats.traps,
            m.stats.class_count(tags_repro::mipsx::InsnClass::Nop),
        );
    }
    println!("\n('saved' is the paper's Table 2 metric: % of baseline cycles eliminated)");
    eprint!("{}", session.summary());
}
