/root/repo/target/debug/examples/hardware_study-b7ad3c622cf6a3ae.d: examples/hardware_study.rs

/root/repo/target/debug/examples/hardware_study-b7ad3c622cf6a3ae: examples/hardware_study.rs

examples/hardware_study.rs:
