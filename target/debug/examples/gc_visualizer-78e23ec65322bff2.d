/root/repo/target/debug/examples/gc_visualizer-78e23ec65322bff2.d: examples/gc_visualizer.rs Cargo.toml

/root/repo/target/debug/examples/libgc_visualizer-78e23ec65322bff2.rmeta: examples/gc_visualizer.rs Cargo.toml

examples/gc_visualizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
