/root/repo/target/debug/examples/quickstart-faca59418eb2aba8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-faca59418eb2aba8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
