/root/repo/target/debug/examples/gc_visualizer-32106669454a4ad5.d: examples/gc_visualizer.rs

/root/repo/target/debug/examples/gc_visualizer-32106669454a4ad5: examples/gc_visualizer.rs

examples/gc_visualizer.rs:
