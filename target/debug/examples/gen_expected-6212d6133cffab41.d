/root/repo/target/debug/examples/gen_expected-6212d6133cffab41.d: examples/gen_expected.rs

/root/repo/target/debug/examples/gen_expected-6212d6133cffab41: examples/gen_expected.rs

examples/gen_expected.rs:
