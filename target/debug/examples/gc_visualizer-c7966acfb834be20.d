/root/repo/target/debug/examples/gc_visualizer-c7966acfb834be20.d: examples/gc_visualizer.rs

/root/repo/target/debug/examples/gc_visualizer-c7966acfb834be20: examples/gc_visualizer.rs

examples/gc_visualizer.rs:
