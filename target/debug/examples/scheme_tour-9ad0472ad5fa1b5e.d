/root/repo/target/debug/examples/scheme_tour-9ad0472ad5fa1b5e.d: examples/scheme_tour.rs

/root/repo/target/debug/examples/scheme_tour-9ad0472ad5fa1b5e: examples/scheme_tour.rs

examples/scheme_tour.rs:
