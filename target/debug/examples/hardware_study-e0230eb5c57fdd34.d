/root/repo/target/debug/examples/hardware_study-e0230eb5c57fdd34.d: examples/hardware_study.rs

/root/repo/target/debug/examples/hardware_study-e0230eb5c57fdd34: examples/hardware_study.rs

examples/hardware_study.rs:
