/root/repo/target/debug/examples/gen_expected-ce22003d832bf809.d: examples/gen_expected.rs Cargo.toml

/root/repo/target/debug/examples/libgen_expected-ce22003d832bf809.rmeta: examples/gen_expected.rs Cargo.toml

examples/gen_expected.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
