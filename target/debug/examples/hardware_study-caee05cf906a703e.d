/root/repo/target/debug/examples/hardware_study-caee05cf906a703e.d: examples/hardware_study.rs Cargo.toml

/root/repo/target/debug/examples/libhardware_study-caee05cf906a703e.rmeta: examples/hardware_study.rs Cargo.toml

examples/hardware_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
