/root/repo/target/debug/examples/gen_expected-93b80d69037ba614.d: examples/gen_expected.rs

/root/repo/target/debug/examples/gen_expected-93b80d69037ba614: examples/gen_expected.rs

examples/gen_expected.rs:
