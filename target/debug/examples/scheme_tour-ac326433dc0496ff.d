/root/repo/target/debug/examples/scheme_tour-ac326433dc0496ff.d: examples/scheme_tour.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_tour-ac326433dc0496ff.rmeta: examples/scheme_tour.rs Cargo.toml

examples/scheme_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
