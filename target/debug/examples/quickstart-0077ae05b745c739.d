/root/repo/target/debug/examples/quickstart-0077ae05b745c739.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0077ae05b745c739: examples/quickstart.rs

examples/quickstart.rs:
