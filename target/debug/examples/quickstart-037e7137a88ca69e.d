/root/repo/target/debug/examples/quickstart-037e7137a88ca69e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-037e7137a88ca69e: examples/quickstart.rs

examples/quickstart.rs:
