/root/repo/target/debug/examples/scheme_tour-9d41fcb34eefecab.d: examples/scheme_tour.rs

/root/repo/target/debug/examples/scheme_tour-9d41fcb34eefecab: examples/scheme_tour.rs

examples/scheme_tour.rs:
