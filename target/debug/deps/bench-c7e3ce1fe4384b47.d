/root/repo/target/debug/deps/bench-c7e3ce1fe4384b47.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-c7e3ce1fe4384b47.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
