/root/repo/target/debug/deps/bench-a53b056f9032b480.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a53b056f9032b480.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a53b056f9032b480.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
