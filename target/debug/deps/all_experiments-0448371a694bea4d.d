/root/repo/target/debug/deps/all_experiments-0448371a694bea4d.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-0448371a694bea4d: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
