/root/repo/target/debug/deps/bench-1adb00c0ddba08ec.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-1adb00c0ddba08ec: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
