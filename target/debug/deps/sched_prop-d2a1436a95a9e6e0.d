/root/repo/target/debug/deps/sched_prop-d2a1436a95a9e6e0.d: crates/mipsx/tests/sched_prop.rs

/root/repo/target/debug/deps/sched_prop-d2a1436a95a9e6e0: crates/mipsx/tests/sched_prop.rs

crates/mipsx/tests/sched_prop.rs:
