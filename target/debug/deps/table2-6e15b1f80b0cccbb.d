/root/repo/target/debug/deps/table2-6e15b1f80b0cccbb.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-6e15b1f80b0cccbb.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
