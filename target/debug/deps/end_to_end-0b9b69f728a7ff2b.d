/root/repo/target/debug/deps/end_to_end-0b9b69f728a7ff2b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0b9b69f728a7ff2b: tests/end_to_end.rs

tests/end_to_end.rs:
