/root/repo/target/debug/deps/codegen_verify_prop-91910981fda299bc.d: crates/mipsx/tests/codegen_verify_prop.rs

/root/repo/target/debug/deps/codegen_verify_prop-91910981fda299bc: crates/mipsx/tests/codegen_verify_prop.rs

crates/mipsx/tests/codegen_verify_prop.rs:
