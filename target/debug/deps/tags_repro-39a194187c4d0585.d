/root/repo/target/debug/deps/tags_repro-39a194187c4d0585.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtags_repro-39a194187c4d0585.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
