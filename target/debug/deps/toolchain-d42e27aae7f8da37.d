/root/repo/target/debug/deps/toolchain-d42e27aae7f8da37.d: crates/bench/benches/toolchain.rs Cargo.toml

/root/repo/target/debug/deps/libtoolchain-d42e27aae7f8da37.rmeta: crates/bench/benches/toolchain.rs Cargo.toml

crates/bench/benches/toolchain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
