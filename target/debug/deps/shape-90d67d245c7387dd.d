/root/repo/target/debug/deps/shape-90d67d245c7387dd.d: crates/tagstudy/tests/shape.rs Cargo.toml

/root/repo/target/debug/deps/libshape-90d67d245c7387dd.rmeta: crates/tagstudy/tests/shape.rs Cargo.toml

crates/tagstudy/tests/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
