/root/repo/target/debug/deps/generic_arith-e0c2c31ec26d80e6.d: crates/bench/src/bin/generic_arith.rs Cargo.toml

/root/repo/target/debug/deps/libgeneric_arith-e0c2c31ec26d80e6.rmeta: crates/bench/src/bin/generic_arith.rs Cargo.toml

crates/bench/src/bin/generic_arith.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
