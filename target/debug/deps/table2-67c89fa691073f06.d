/root/repo/target/debug/deps/table2-67c89fa691073f06.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-67c89fa691073f06: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
