/root/repo/target/debug/deps/tags_repro-03a15f486be7ecfe.d: src/lib.rs

/root/repo/target/debug/deps/tags_repro-03a15f486be7ecfe: src/lib.rs

src/lib.rs:
