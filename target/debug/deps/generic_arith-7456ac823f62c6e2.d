/root/repo/target/debug/deps/generic_arith-7456ac823f62c6e2.d: crates/bench/src/bin/generic_arith.rs Cargo.toml

/root/repo/target/debug/deps/libgeneric_arith-7456ac823f62c6e2.rmeta: crates/bench/src/bin/generic_arith.rs Cargo.toml

crates/bench/src/bin/generic_arith.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
