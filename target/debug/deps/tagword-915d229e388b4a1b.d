/root/repo/target/debug/deps/tagword-915d229e388b4a1b.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/debug/deps/tagword-915d229e388b4a1b: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
