/root/repo/target/debug/deps/all_experiments-fcd5c9c8cacd1094.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-fcd5c9c8cacd1094: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
