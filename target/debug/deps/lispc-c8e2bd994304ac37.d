/root/repo/target/debug/deps/lispc-c8e2bd994304ac37.d: crates/lisp/src/bin/lispc.rs

/root/repo/target/debug/deps/lispc-c8e2bd994304ac37: crates/lisp/src/bin/lispc.rs

crates/lisp/src/bin/lispc.rs:
