/root/repo/target/debug/deps/hardware_ablation-ef48b522c695552f.d: crates/bench/benches/hardware_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libhardware_ablation-ef48b522c695552f.rmeta: crates/bench/benches/hardware_ablation.rs Cargo.toml

crates/bench/benches/hardware_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
