/root/repo/target/debug/deps/golden_tables-23b66a5b2385b33a.d: tests/golden_tables.rs

/root/repo/target/debug/deps/golden_tables-23b66a5b2385b33a: tests/golden_tables.rs

tests/golden_tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
