/root/repo/target/debug/deps/proptest-9a14c7cbdd95a63d.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9a14c7cbdd95a63d.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9a14c7cbdd95a63d.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
