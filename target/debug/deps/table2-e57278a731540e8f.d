/root/repo/target/debug/deps/table2-e57278a731540e8f.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e57278a731540e8f.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
