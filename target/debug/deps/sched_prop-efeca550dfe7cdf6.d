/root/repo/target/debug/deps/sched_prop-efeca550dfe7cdf6.d: crates/mipsx/tests/sched_prop.rs

/root/repo/target/debug/deps/sched_prop-efeca550dfe7cdf6: crates/mipsx/tests/sched_prop.rs

crates/mipsx/tests/sched_prop.rs:
