/root/repo/target/debug/deps/sequences-0b5cb606fa41ea6a.d: crates/lisp/tests/sequences.rs Cargo.toml

/root/repo/target/debug/deps/libsequences-0b5cb606fa41ea6a.rmeta: crates/lisp/tests/sequences.rs Cargo.toml

crates/lisp/tests/sequences.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
