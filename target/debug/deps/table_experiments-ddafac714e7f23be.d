/root/repo/target/debug/deps/table_experiments-ddafac714e7f23be.d: crates/bench/benches/table_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libtable_experiments-ddafac714e7f23be.rmeta: crates/bench/benches/table_experiments.rs Cargo.toml

crates/bench/benches/table_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
