/root/repo/target/debug/deps/tmp_print-a728323c7701dd52.d: crates/conformance/tests/tmp_print.rs

/root/repo/target/debug/deps/tmp_print-a728323c7701dd52: crates/conformance/tests/tmp_print.rs

crates/conformance/tests/tmp_print.rs:
