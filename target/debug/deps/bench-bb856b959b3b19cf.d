/root/repo/target/debug/deps/bench-bb856b959b3b19cf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-bb856b959b3b19cf: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
