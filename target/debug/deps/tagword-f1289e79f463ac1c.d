/root/repo/target/debug/deps/tagword-f1289e79f463ac1c.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs Cargo.toml

/root/repo/target/debug/deps/libtagword-f1289e79f463ac1c.rmeta: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs Cargo.toml

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
