/root/repo/target/debug/deps/mipsx-36ddcdf012544243.d: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx-36ddcdf012544243.rmeta: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs Cargo.toml

crates/mipsx/src/lib.rs:
crates/mipsx/src/annot.rs:
crates/mipsx/src/asm.rs:
crates/mipsx/src/cpu.rs:
crates/mipsx/src/hw.rs:
crates/mipsx/src/insn.rs:
crates/mipsx/src/mem.rs:
crates/mipsx/src/program.rs:
crates/mipsx/src/refcpu.rs:
crates/mipsx/src/reg.rs:
crates/mipsx/src/stats.rs:
crates/mipsx/src/sched.rs:
crates/mipsx/src/trace.rs:
crates/mipsx/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
