/root/repo/target/debug/deps/hardware_ablation-0c000fbe3a40f0f8.d: crates/bench/benches/hardware_ablation.rs

/root/repo/target/debug/deps/hardware_ablation-0c000fbe3a40f0f8: crates/bench/benches/hardware_ablation.rs

crates/bench/benches/hardware_ablation.rs:
