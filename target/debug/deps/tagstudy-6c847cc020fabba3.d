/root/repo/target/debug/deps/tagstudy-6c847cc020fabba3.d: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/debug/deps/libtagstudy-6c847cc020fabba3.rlib: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/debug/deps/libtagstudy-6c847cc020fabba3.rmeta: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

crates/tagstudy/src/lib.rs:
crates/tagstudy/src/config.rs:
crates/tagstudy/src/measure.rs:
crates/tagstudy/src/paper.rs:
crates/tagstudy/src/report.rs:
crates/tagstudy/src/session.rs:
crates/tagstudy/src/tables.rs:
