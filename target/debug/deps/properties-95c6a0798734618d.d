/root/repo/target/debug/deps/properties-95c6a0798734618d.d: crates/tagword/tests/properties.rs

/root/repo/target/debug/deps/properties-95c6a0798734618d: crates/tagword/tests/properties.rs

crates/tagword/tests/properties.rs:
