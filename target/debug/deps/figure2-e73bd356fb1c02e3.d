/root/repo/target/debug/deps/figure2-e73bd356fb1c02e3.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-e73bd356fb1c02e3: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
