/root/repo/target/debug/deps/lispc-3594f88441900af3.d: crates/lisp/src/bin/lispc.rs

/root/repo/target/debug/deps/lispc-3594f88441900af3: crates/lisp/src/bin/lispc.rs

crates/lisp/src/bin/lispc.rs:
