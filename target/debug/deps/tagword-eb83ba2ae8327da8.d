/root/repo/target/debug/deps/tagword-eb83ba2ae8327da8.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/debug/deps/libtagword-eb83ba2ae8327da8.rlib: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/debug/deps/libtagword-eb83ba2ae8327da8.rmeta: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
