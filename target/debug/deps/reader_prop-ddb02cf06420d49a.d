/root/repo/target/debug/deps/reader_prop-ddb02cf06420d49a.d: crates/lisp/tests/reader_prop.rs Cargo.toml

/root/repo/target/debug/deps/libreader_prop-ddb02cf06420d49a.rmeta: crates/lisp/tests/reader_prop.rs Cargo.toml

crates/lisp/tests/reader_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
