/root/repo/target/debug/deps/figure1-89e6b85acdec40d5.d: crates/bench/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-89e6b85acdec40d5.rmeta: crates/bench/src/bin/figure1.rs Cargo.toml

crates/bench/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
