/root/repo/target/debug/deps/shape-3e7753ce7c149cde.d: crates/tagstudy/tests/shape.rs

/root/repo/target/debug/deps/shape-3e7753ce7c149cde: crates/tagstudy/tests/shape.rs

crates/tagstudy/tests/shape.rs:
