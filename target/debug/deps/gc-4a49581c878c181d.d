/root/repo/target/debug/deps/gc-4a49581c878c181d.d: crates/lisp/tests/gc.rs

/root/repo/target/debug/deps/gc-4a49581c878c181d: crates/lisp/tests/gc.rs

crates/lisp/tests/gc.rs:
