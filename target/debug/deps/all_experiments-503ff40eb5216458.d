/root/repo/target/debug/deps/all_experiments-503ff40eb5216458.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-503ff40eb5216458.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
