/root/repo/target/debug/deps/tagstudy-a03b859a62b86886.d: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtagstudy-a03b859a62b86886.rmeta: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs Cargo.toml

crates/tagstudy/src/lib.rs:
crates/tagstudy/src/config.rs:
crates/tagstudy/src/measure.rs:
crates/tagstudy/src/paper.rs:
crates/tagstudy/src/report.rs:
crates/tagstudy/src/session.rs:
crates/tagstudy/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
