/root/repo/target/debug/deps/tags_repro-a57b7ac13989168d.d: src/lib.rs

/root/repo/target/debug/deps/tags_repro-a57b7ac13989168d: src/lib.rs

src/lib.rs:
