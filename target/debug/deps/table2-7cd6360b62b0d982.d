/root/repo/target/debug/deps/table2-7cd6360b62b0d982.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-7cd6360b62b0d982: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
