/root/repo/target/debug/deps/figure1-c94e7e1b7e2bc788.d: crates/bench/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-c94e7e1b7e2bc788.rmeta: crates/bench/src/bin/figure1.rs Cargo.toml

crates/bench/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
