/root/repo/target/debug/deps/lisp-dc4e805771c12b34.d: crates/lisp/src/lib.rs crates/lisp/src/ast.rs crates/lisp/src/codegen.rs crates/lisp/src/compile.rs crates/lisp/src/error.rs crates/lisp/src/front.rs crates/lisp/src/layout.rs crates/lisp/src/prelude.rs crates/lisp/src/runtime.rs crates/lisp/src/sexp.rs crates/lisp/src/tagops.rs Cargo.toml

/root/repo/target/debug/deps/liblisp-dc4e805771c12b34.rmeta: crates/lisp/src/lib.rs crates/lisp/src/ast.rs crates/lisp/src/codegen.rs crates/lisp/src/compile.rs crates/lisp/src/error.rs crates/lisp/src/front.rs crates/lisp/src/layout.rs crates/lisp/src/prelude.rs crates/lisp/src/runtime.rs crates/lisp/src/sexp.rs crates/lisp/src/tagops.rs Cargo.toml

crates/lisp/src/lib.rs:
crates/lisp/src/ast.rs:
crates/lisp/src/codegen.rs:
crates/lisp/src/compile.rs:
crates/lisp/src/error.rs:
crates/lisp/src/front.rs:
crates/lisp/src/layout.rs:
crates/lisp/src/prelude.rs:
crates/lisp/src/runtime.rs:
crates/lisp/src/sexp.rs:
crates/lisp/src/tagops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
