/root/repo/target/debug/deps/conformance-8705ed487ec01b7b.d: crates/conformance/src/lib.rs

/root/repo/target/debug/deps/conformance-8705ed487ec01b7b: crates/conformance/src/lib.rs

crates/conformance/src/lib.rs:
