/root/repo/target/debug/deps/table_experiments-e5f182fc8aae0c09.d: crates/bench/benches/table_experiments.rs

/root/repo/target/debug/deps/table_experiments-e5f182fc8aae0c09: crates/bench/benches/table_experiments.rs

crates/bench/benches/table_experiments.rs:
