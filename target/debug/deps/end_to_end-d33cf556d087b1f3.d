/root/repo/target/debug/deps/end_to_end-d33cf556d087b1f3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d33cf556d087b1f3: tests/end_to_end.rs

tests/end_to_end.rs:
