/root/repo/target/debug/deps/session-6d11f6e7409c7d87.d: crates/tagstudy/tests/session.rs

/root/repo/target/debug/deps/session-6d11f6e7409c7d87: crates/tagstudy/tests/session.rs

crates/tagstudy/tests/session.rs:
