/root/repo/target/debug/deps/tagstudy-d7e8b082dd17f74a.d: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/debug/deps/tagstudy-d7e8b082dd17f74a: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

crates/tagstudy/src/lib.rs:
crates/tagstudy/src/config.rs:
crates/tagstudy/src/measure.rs:
crates/tagstudy/src/paper.rs:
crates/tagstudy/src/report.rs:
crates/tagstudy/src/session.rs:
crates/tagstudy/src/tables.rs:
