/root/repo/target/debug/deps/session-a0d76ad843eec451.d: crates/tagstudy/tests/session.rs

/root/repo/target/debug/deps/session-a0d76ad843eec451: crates/tagstudy/tests/session.rs

crates/tagstudy/tests/session.rs:
