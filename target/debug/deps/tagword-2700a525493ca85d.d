/root/repo/target/debug/deps/tagword-2700a525493ca85d.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/debug/deps/tagword-2700a525493ca85d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
