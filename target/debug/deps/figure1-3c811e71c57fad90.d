/root/repo/target/debug/deps/figure1-3c811e71c57fad90.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-3c811e71c57fad90: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
