/root/repo/target/debug/deps/table3-25e9cfe5e97d2af9.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-25e9cfe5e97d2af9.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
