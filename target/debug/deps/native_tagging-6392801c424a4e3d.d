/root/repo/target/debug/deps/native_tagging-6392801c424a4e3d.d: crates/bench/benches/native_tagging.rs

/root/repo/target/debug/deps/native_tagging-6392801c424a4e3d: crates/bench/benches/native_tagging.rs

crates/bench/benches/native_tagging.rs:
