/root/repo/target/debug/deps/sched_prop-52b5ad28f2ff0e85.d: crates/mipsx/tests/sched_prop.rs

/root/repo/target/debug/deps/sched_prop-52b5ad28f2ff0e85: crates/mipsx/tests/sched_prop.rs

crates/mipsx/tests/sched_prop.rs:
