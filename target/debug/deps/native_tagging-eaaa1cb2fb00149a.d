/root/repo/target/debug/deps/native_tagging-eaaa1cb2fb00149a.d: crates/bench/benches/native_tagging.rs Cargo.toml

/root/repo/target/debug/deps/libnative_tagging-eaaa1cb2fb00149a.rmeta: crates/bench/benches/native_tagging.rs Cargo.toml

crates/bench/benches/native_tagging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
