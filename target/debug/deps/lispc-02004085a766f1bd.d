/root/repo/target/debug/deps/lispc-02004085a766f1bd.d: crates/lisp/src/bin/lispc.rs Cargo.toml

/root/repo/target/debug/deps/liblispc-02004085a766f1bd.rmeta: crates/lisp/src/bin/lispc.rs Cargo.toml

crates/lisp/src/bin/lispc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
