/root/repo/target/debug/deps/table3-03fab6d080279dd8.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-03fab6d080279dd8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
