/root/repo/target/debug/deps/tags_repro-5c9eed14551e57c3.d: src/lib.rs

/root/repo/target/debug/deps/libtags_repro-5c9eed14551e57c3.rlib: src/lib.rs

/root/repo/target/debug/deps/libtags_repro-5c9eed14551e57c3.rmeta: src/lib.rs

src/lib.rs:
