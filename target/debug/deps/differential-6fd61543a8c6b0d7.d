/root/repo/target/debug/deps/differential-6fd61543a8c6b0d7.d: crates/lisp/tests/differential.rs

/root/repo/target/debug/deps/differential-6fd61543a8c6b0d7: crates/lisp/tests/differential.rs

crates/lisp/tests/differential.rs:
