/root/repo/target/debug/deps/run_all-f05443de90750bb0.d: crates/programs/tests/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-f05443de90750bb0.rmeta: crates/programs/tests/run_all.rs Cargo.toml

crates/programs/tests/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
