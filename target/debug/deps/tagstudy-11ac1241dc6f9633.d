/root/repo/target/debug/deps/tagstudy-11ac1241dc6f9633.d: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/debug/deps/libtagstudy-11ac1241dc6f9633.rlib: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/debug/deps/libtagstudy-11ac1241dc6f9633.rmeta: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

crates/tagstudy/src/lib.rs:
crates/tagstudy/src/config.rs:
crates/tagstudy/src/measure.rs:
crates/tagstudy/src/paper.rs:
crates/tagstudy/src/report.rs:
crates/tagstudy/src/session.rs:
crates/tagstudy/src/tables.rs:
