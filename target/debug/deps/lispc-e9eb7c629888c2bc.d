/root/repo/target/debug/deps/lispc-e9eb7c629888c2bc.d: crates/lisp/src/bin/lispc.rs

/root/repo/target/debug/deps/lispc-e9eb7c629888c2bc: crates/lisp/src/bin/lispc.rs

crates/lisp/src/bin/lispc.rs:
