/root/repo/target/debug/deps/criterion-f60ba7321a3ebc6b.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-f60ba7321a3ebc6b: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
