/root/repo/target/debug/deps/lisp-d51612b8e44bf034.d: crates/lisp/src/lib.rs crates/lisp/src/ast.rs crates/lisp/src/codegen.rs crates/lisp/src/compile.rs crates/lisp/src/error.rs crates/lisp/src/front.rs crates/lisp/src/layout.rs crates/lisp/src/prelude.rs crates/lisp/src/runtime.rs crates/lisp/src/sexp.rs crates/lisp/src/tagops.rs

/root/repo/target/debug/deps/lisp-d51612b8e44bf034: crates/lisp/src/lib.rs crates/lisp/src/ast.rs crates/lisp/src/codegen.rs crates/lisp/src/compile.rs crates/lisp/src/error.rs crates/lisp/src/front.rs crates/lisp/src/layout.rs crates/lisp/src/prelude.rs crates/lisp/src/runtime.rs crates/lisp/src/sexp.rs crates/lisp/src/tagops.rs

crates/lisp/src/lib.rs:
crates/lisp/src/ast.rs:
crates/lisp/src/codegen.rs:
crates/lisp/src/compile.rs:
crates/lisp/src/error.rs:
crates/lisp/src/front.rs:
crates/lisp/src/layout.rs:
crates/lisp/src/prelude.rs:
crates/lisp/src/runtime.rs:
crates/lisp/src/sexp.rs:
crates/lisp/src/tagops.rs:
