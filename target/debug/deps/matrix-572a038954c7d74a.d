/root/repo/target/debug/deps/matrix-572a038954c7d74a.d: crates/conformance/tests/matrix.rs

/root/repo/target/debug/deps/matrix-572a038954c7d74a: crates/conformance/tests/matrix.rs

crates/conformance/tests/matrix.rs:
