/root/repo/target/debug/deps/programs-84422f6961784bc0.d: crates/programs/src/lib.rs crates/programs/src/../lisp/inter.lisp crates/programs/src/../lisp/deduce.lisp crates/programs/src/../lisp/rat.lisp crates/programs/src/../lisp/comp.lisp crates/programs/src/../lisp/opt.lisp crates/programs/src/../lisp/frl.lisp crates/programs/src/../lisp/boyer.lisp crates/programs/src/../lisp/brow.lisp crates/programs/src/../lisp/trav.lisp crates/programs/src/../expected/deduce.txt crates/programs/src/../expected/rat.txt crates/programs/src/../expected/comp.txt crates/programs/src/../expected/opt.txt crates/programs/src/../expected/frl.txt crates/programs/src/../expected/brow.txt crates/programs/src/../expected/trav.txt

/root/repo/target/debug/deps/programs-84422f6961784bc0: crates/programs/src/lib.rs crates/programs/src/../lisp/inter.lisp crates/programs/src/../lisp/deduce.lisp crates/programs/src/../lisp/rat.lisp crates/programs/src/../lisp/comp.lisp crates/programs/src/../lisp/opt.lisp crates/programs/src/../lisp/frl.lisp crates/programs/src/../lisp/boyer.lisp crates/programs/src/../lisp/brow.lisp crates/programs/src/../lisp/trav.lisp crates/programs/src/../expected/deduce.txt crates/programs/src/../expected/rat.txt crates/programs/src/../expected/comp.txt crates/programs/src/../expected/opt.txt crates/programs/src/../expected/frl.txt crates/programs/src/../expected/brow.txt crates/programs/src/../expected/trav.txt

crates/programs/src/lib.rs:
crates/programs/src/../lisp/inter.lisp:
crates/programs/src/../lisp/deduce.lisp:
crates/programs/src/../lisp/rat.lisp:
crates/programs/src/../lisp/comp.lisp:
crates/programs/src/../lisp/opt.lisp:
crates/programs/src/../lisp/frl.lisp:
crates/programs/src/../lisp/boyer.lisp:
crates/programs/src/../lisp/brow.lisp:
crates/programs/src/../lisp/trav.lisp:
crates/programs/src/../expected/deduce.txt:
crates/programs/src/../expected/rat.txt:
crates/programs/src/../expected/comp.txt:
crates/programs/src/../expected/opt.txt:
crates/programs/src/../expected/frl.txt:
crates/programs/src/../expected/brow.txt:
crates/programs/src/../expected/trav.txt:
