/root/repo/target/debug/deps/table3-6d1c28329d49c135.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-6d1c28329d49c135.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
