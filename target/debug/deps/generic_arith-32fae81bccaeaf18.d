/root/repo/target/debug/deps/generic_arith-32fae81bccaeaf18.d: crates/bench/src/bin/generic_arith.rs

/root/repo/target/debug/deps/generic_arith-32fae81bccaeaf18: crates/bench/src/bin/generic_arith.rs

crates/bench/src/bin/generic_arith.rs:
