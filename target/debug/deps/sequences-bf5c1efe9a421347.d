/root/repo/target/debug/deps/sequences-bf5c1efe9a421347.d: crates/lisp/tests/sequences.rs

/root/repo/target/debug/deps/sequences-bf5c1efe9a421347: crates/lisp/tests/sequences.rs

crates/lisp/tests/sequences.rs:
