/root/repo/target/debug/deps/figure2-6eb1bc22ce7bcff3.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-6eb1bc22ce7bcff3.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
