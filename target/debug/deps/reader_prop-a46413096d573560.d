/root/repo/target/debug/deps/reader_prop-a46413096d573560.d: crates/lisp/tests/reader_prop.rs

/root/repo/target/debug/deps/reader_prop-a46413096d573560: crates/lisp/tests/reader_prop.rs

crates/lisp/tests/reader_prop.rs:
