/root/repo/target/debug/deps/shape-b4b88f8d87a1d154.d: crates/tagstudy/tests/shape.rs

/root/repo/target/debug/deps/shape-b4b88f8d87a1d154: crates/tagstudy/tests/shape.rs

crates/tagstudy/tests/shape.rs:
