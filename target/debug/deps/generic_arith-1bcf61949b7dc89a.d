/root/repo/target/debug/deps/generic_arith-1bcf61949b7dc89a.d: crates/bench/src/bin/generic_arith.rs

/root/repo/target/debug/deps/generic_arith-1bcf61949b7dc89a: crates/bench/src/bin/generic_arith.rs

crates/bench/src/bin/generic_arith.rs:
