/root/repo/target/debug/deps/differential-5d13b505abd22011.d: crates/lisp/tests/differential.rs

/root/repo/target/debug/deps/differential-5d13b505abd22011: crates/lisp/tests/differential.rs

crates/lisp/tests/differential.rs:
