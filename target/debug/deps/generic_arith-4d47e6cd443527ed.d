/root/repo/target/debug/deps/generic_arith-4d47e6cd443527ed.d: crates/bench/src/bin/generic_arith.rs

/root/repo/target/debug/deps/generic_arith-4d47e6cd443527ed: crates/bench/src/bin/generic_arith.rs

crates/bench/src/bin/generic_arith.rs:
