/root/repo/target/debug/deps/language-545c46d8674a1d2f.d: crates/lisp/tests/language.rs Cargo.toml

/root/repo/target/debug/deps/liblanguage-545c46d8674a1d2f.rmeta: crates/lisp/tests/language.rs Cargo.toml

crates/lisp/tests/language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
