/root/repo/target/debug/deps/properties-52c46ea1204a8025.d: crates/tagword/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-52c46ea1204a8025.rmeta: crates/tagword/tests/properties.rs Cargo.toml

crates/tagword/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
