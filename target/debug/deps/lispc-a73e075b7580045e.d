/root/repo/target/debug/deps/lispc-a73e075b7580045e.d: crates/lisp/src/bin/lispc.rs Cargo.toml

/root/repo/target/debug/deps/liblispc-a73e075b7580045e.rmeta: crates/lisp/src/bin/lispc.rs Cargo.toml

crates/lisp/src/bin/lispc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
