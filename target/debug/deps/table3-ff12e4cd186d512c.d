/root/repo/target/debug/deps/table3-ff12e4cd186d512c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ff12e4cd186d512c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
