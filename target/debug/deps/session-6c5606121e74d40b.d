/root/repo/target/debug/deps/session-6c5606121e74d40b.d: crates/tagstudy/tests/session.rs Cargo.toml

/root/repo/target/debug/deps/libsession-6c5606121e74d40b.rmeta: crates/tagstudy/tests/session.rs Cargo.toml

crates/tagstudy/tests/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
