/root/repo/target/debug/deps/reader_prop-3946a2a33e495ebd.d: crates/lisp/tests/reader_prop.rs

/root/repo/target/debug/deps/reader_prop-3946a2a33e495ebd: crates/lisp/tests/reader_prop.rs

crates/lisp/tests/reader_prop.rs:
