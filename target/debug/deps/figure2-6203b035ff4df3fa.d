/root/repo/target/debug/deps/figure2-6203b035ff4df3fa.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-6203b035ff4df3fa: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
