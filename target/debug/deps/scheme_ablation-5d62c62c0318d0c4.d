/root/repo/target/debug/deps/scheme_ablation-5d62c62c0318d0c4.d: crates/bench/benches/scheme_ablation.rs

/root/repo/target/debug/deps/scheme_ablation-5d62c62c0318d0c4: crates/bench/benches/scheme_ablation.rs

crates/bench/benches/scheme_ablation.rs:
