/root/repo/target/debug/deps/table1-647a69629a24ee3e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-647a69629a24ee3e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
