/root/repo/target/debug/deps/figure1-48135545a51e1a5b.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-48135545a51e1a5b: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
