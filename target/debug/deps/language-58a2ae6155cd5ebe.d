/root/repo/target/debug/deps/language-58a2ae6155cd5ebe.d: crates/lisp/tests/language.rs

/root/repo/target/debug/deps/language-58a2ae6155cd5ebe: crates/lisp/tests/language.rs

crates/lisp/tests/language.rs:
