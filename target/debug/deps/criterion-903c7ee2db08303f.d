/root/repo/target/debug/deps/criterion-903c7ee2db08303f.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-903c7ee2db08303f.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-903c7ee2db08303f.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
