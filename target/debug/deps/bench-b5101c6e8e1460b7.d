/root/repo/target/debug/deps/bench-b5101c6e8e1460b7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-b5101c6e8e1460b7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-b5101c6e8e1460b7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
