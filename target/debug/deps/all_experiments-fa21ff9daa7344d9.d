/root/repo/target/debug/deps/all_experiments-fa21ff9daa7344d9.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-fa21ff9daa7344d9: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
