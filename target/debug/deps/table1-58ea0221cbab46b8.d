/root/repo/target/debug/deps/table1-58ea0221cbab46b8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-58ea0221cbab46b8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
