/root/repo/target/debug/deps/mipsx-38edc21855c372cc.d: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs

/root/repo/target/debug/deps/mipsx-38edc21855c372cc: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs

crates/mipsx/src/lib.rs:
crates/mipsx/src/annot.rs:
crates/mipsx/src/asm.rs:
crates/mipsx/src/cpu.rs:
crates/mipsx/src/hw.rs:
crates/mipsx/src/insn.rs:
crates/mipsx/src/mem.rs:
crates/mipsx/src/program.rs:
crates/mipsx/src/refcpu.rs:
crates/mipsx/src/reg.rs:
crates/mipsx/src/stats.rs:
crates/mipsx/src/sched.rs:
crates/mipsx/src/trace.rs:
crates/mipsx/src/verify.rs:
