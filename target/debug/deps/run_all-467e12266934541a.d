/root/repo/target/debug/deps/run_all-467e12266934541a.d: crates/programs/tests/run_all.rs

/root/repo/target/debug/deps/run_all-467e12266934541a: crates/programs/tests/run_all.rs

crates/programs/tests/run_all.rs:
