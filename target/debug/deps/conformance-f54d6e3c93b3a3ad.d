/root/repo/target/debug/deps/conformance-f54d6e3c93b3a3ad.d: crates/conformance/src/lib.rs

/root/repo/target/debug/deps/libconformance-f54d6e3c93b3a3ad.rlib: crates/conformance/src/lib.rs

/root/repo/target/debug/deps/libconformance-f54d6e3c93b3a3ad.rmeta: crates/conformance/src/lib.rs

crates/conformance/src/lib.rs:
