/root/repo/target/debug/deps/conformance-a1514ab34454ad37.d: crates/conformance/src/lib.rs

/root/repo/target/debug/deps/libconformance-a1514ab34454ad37.rlib: crates/conformance/src/lib.rs

/root/repo/target/debug/deps/libconformance-a1514ab34454ad37.rmeta: crates/conformance/src/lib.rs

crates/conformance/src/lib.rs:
