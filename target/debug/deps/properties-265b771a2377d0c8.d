/root/repo/target/debug/deps/properties-265b771a2377d0c8.d: crates/tagword/tests/properties.rs

/root/repo/target/debug/deps/properties-265b771a2377d0c8: crates/tagword/tests/properties.rs

crates/tagword/tests/properties.rs:
