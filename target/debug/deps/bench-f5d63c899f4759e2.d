/root/repo/target/debug/deps/bench-f5d63c899f4759e2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-f5d63c899f4759e2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
