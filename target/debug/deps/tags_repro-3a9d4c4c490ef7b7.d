/root/repo/target/debug/deps/tags_repro-3a9d4c4c490ef7b7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtags_repro-3a9d4c4c490ef7b7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
