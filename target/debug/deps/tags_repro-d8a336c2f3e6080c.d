/root/repo/target/debug/deps/tags_repro-d8a336c2f3e6080c.d: src/lib.rs

/root/repo/target/debug/deps/libtags_repro-d8a336c2f3e6080c.rlib: src/lib.rs

/root/repo/target/debug/deps/libtags_repro-d8a336c2f3e6080c.rmeta: src/lib.rs

src/lib.rs:
