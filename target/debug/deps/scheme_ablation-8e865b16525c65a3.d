/root/repo/target/debug/deps/scheme_ablation-8e865b16525c65a3.d: crates/bench/benches/scheme_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_ablation-8e865b16525c65a3.rmeta: crates/bench/benches/scheme_ablation.rs Cargo.toml

crates/bench/benches/scheme_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
