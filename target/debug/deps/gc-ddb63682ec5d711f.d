/root/repo/target/debug/deps/gc-ddb63682ec5d711f.d: crates/lisp/tests/gc.rs

/root/repo/target/debug/deps/gc-ddb63682ec5d711f: crates/lisp/tests/gc.rs

crates/lisp/tests/gc.rs:
