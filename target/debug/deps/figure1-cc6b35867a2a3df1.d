/root/repo/target/debug/deps/figure1-cc6b35867a2a3df1.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-cc6b35867a2a3df1: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
