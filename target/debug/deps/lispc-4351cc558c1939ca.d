/root/repo/target/debug/deps/lispc-4351cc558c1939ca.d: crates/lisp/src/bin/lispc.rs

/root/repo/target/debug/deps/lispc-4351cc558c1939ca: crates/lisp/src/bin/lispc.rs

crates/lisp/src/bin/lispc.rs:
