/root/repo/target/debug/deps/table3-511ab9186f307839.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-511ab9186f307839: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
