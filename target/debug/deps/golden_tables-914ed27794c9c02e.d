/root/repo/target/debug/deps/golden_tables-914ed27794c9c02e.d: tests/golden_tables.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_tables-914ed27794c9c02e.rmeta: tests/golden_tables.rs Cargo.toml

tests/golden_tables.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
