/root/repo/target/debug/deps/language-05efc990187b9988.d: crates/lisp/tests/language.rs

/root/repo/target/debug/deps/language-05efc990187b9988: crates/lisp/tests/language.rs

crates/lisp/tests/language.rs:
