/root/repo/target/debug/deps/figure2-5fe6a55833db99bc.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-5fe6a55833db99bc.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
