/root/repo/target/debug/deps/sched_prop-3f8b191364dc2a80.d: crates/mipsx/tests/sched_prop.rs Cargo.toml

/root/repo/target/debug/deps/libsched_prop-3f8b191364dc2a80.rmeta: crates/mipsx/tests/sched_prop.rs Cargo.toml

crates/mipsx/tests/sched_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
