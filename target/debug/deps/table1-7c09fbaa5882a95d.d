/root/repo/target/debug/deps/table1-7c09fbaa5882a95d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7c09fbaa5882a95d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
