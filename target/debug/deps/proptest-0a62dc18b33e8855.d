/root/repo/target/debug/deps/proptest-0a62dc18b33e8855.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-0a62dc18b33e8855: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
