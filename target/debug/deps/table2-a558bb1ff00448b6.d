/root/repo/target/debug/deps/table2-a558bb1ff00448b6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a558bb1ff00448b6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
