/root/repo/target/debug/deps/mipsx-8e6730db5c88ac33.d: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs

/root/repo/target/debug/deps/libmipsx-8e6730db5c88ac33.rlib: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs

/root/repo/target/debug/deps/libmipsx-8e6730db5c88ac33.rmeta: crates/mipsx/src/lib.rs crates/mipsx/src/annot.rs crates/mipsx/src/asm.rs crates/mipsx/src/cpu.rs crates/mipsx/src/hw.rs crates/mipsx/src/insn.rs crates/mipsx/src/mem.rs crates/mipsx/src/program.rs crates/mipsx/src/refcpu.rs crates/mipsx/src/reg.rs crates/mipsx/src/stats.rs crates/mipsx/src/sched.rs crates/mipsx/src/trace.rs crates/mipsx/src/verify.rs

crates/mipsx/src/lib.rs:
crates/mipsx/src/annot.rs:
crates/mipsx/src/asm.rs:
crates/mipsx/src/cpu.rs:
crates/mipsx/src/hw.rs:
crates/mipsx/src/insn.rs:
crates/mipsx/src/mem.rs:
crates/mipsx/src/program.rs:
crates/mipsx/src/refcpu.rs:
crates/mipsx/src/reg.rs:
crates/mipsx/src/stats.rs:
crates/mipsx/src/sched.rs:
crates/mipsx/src/trace.rs:
crates/mipsx/src/verify.rs:
