/root/repo/target/debug/deps/gc-acec17f5956aec42.d: crates/lisp/tests/gc.rs Cargo.toml

/root/repo/target/debug/deps/libgc-acec17f5956aec42.rmeta: crates/lisp/tests/gc.rs Cargo.toml

crates/lisp/tests/gc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
