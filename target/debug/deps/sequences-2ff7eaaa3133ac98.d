/root/repo/target/debug/deps/sequences-2ff7eaaa3133ac98.d: crates/lisp/tests/sequences.rs

/root/repo/target/debug/deps/sequences-2ff7eaaa3133ac98: crates/lisp/tests/sequences.rs

crates/lisp/tests/sequences.rs:
