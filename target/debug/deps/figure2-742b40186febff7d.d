/root/repo/target/debug/deps/figure2-742b40186febff7d.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-742b40186febff7d: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
