/root/repo/target/debug/deps/tagword-3f1e8e034d094d58.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/debug/deps/libtagword-3f1e8e034d094d58.rlib: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/debug/deps/libtagword-3f1e8e034d094d58.rmeta: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
