/root/repo/target/debug/deps/run_all-dc2414863fc0f1d2.d: crates/programs/tests/run_all.rs

/root/repo/target/debug/deps/run_all-dc2414863fc0f1d2: crates/programs/tests/run_all.rs

crates/programs/tests/run_all.rs:
