/root/repo/target/debug/deps/differential-6833ec25e77f630d.d: crates/lisp/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-6833ec25e77f630d.rmeta: crates/lisp/tests/differential.rs Cargo.toml

crates/lisp/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
