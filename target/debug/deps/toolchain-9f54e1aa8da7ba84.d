/root/repo/target/debug/deps/toolchain-9f54e1aa8da7ba84.d: crates/bench/benches/toolchain.rs

/root/repo/target/debug/deps/toolchain-9f54e1aa8da7ba84: crates/bench/benches/toolchain.rs

crates/bench/benches/toolchain.rs:
