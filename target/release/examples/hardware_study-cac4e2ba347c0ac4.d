/root/repo/target/release/examples/hardware_study-cac4e2ba347c0ac4.d: examples/hardware_study.rs

/root/repo/target/release/examples/hardware_study-cac4e2ba347c0ac4: examples/hardware_study.rs

examples/hardware_study.rs:
