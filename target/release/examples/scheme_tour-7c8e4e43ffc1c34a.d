/root/repo/target/release/examples/scheme_tour-7c8e4e43ffc1c34a.d: examples/scheme_tour.rs

/root/repo/target/release/examples/scheme_tour-7c8e4e43ffc1c34a: examples/scheme_tour.rs

examples/scheme_tour.rs:
