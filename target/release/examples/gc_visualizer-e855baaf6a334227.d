/root/repo/target/release/examples/gc_visualizer-e855baaf6a334227.d: examples/gc_visualizer.rs

/root/repo/target/release/examples/gc_visualizer-e855baaf6a334227: examples/gc_visualizer.rs

examples/gc_visualizer.rs:
