/root/repo/target/release/examples/divergence_demo-14d5c58a684f2cbc.d: crates/conformance/examples/divergence_demo.rs

/root/repo/target/release/examples/divergence_demo-14d5c58a684f2cbc: crates/conformance/examples/divergence_demo.rs

crates/conformance/examples/divergence_demo.rs:
