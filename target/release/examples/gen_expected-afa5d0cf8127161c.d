/root/repo/target/release/examples/gen_expected-afa5d0cf8127161c.d: examples/gen_expected.rs

/root/repo/target/release/examples/gen_expected-afa5d0cf8127161c: examples/gen_expected.rs

examples/gen_expected.rs:
