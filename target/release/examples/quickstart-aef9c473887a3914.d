/root/repo/target/release/examples/quickstart-aef9c473887a3914.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-aef9c473887a3914: examples/quickstart.rs

examples/quickstart.rs:
