/root/repo/target/release/deps/tagstudy-d0ae7fbcfce959e4.d: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/release/deps/libtagstudy-d0ae7fbcfce959e4.rlib: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

/root/repo/target/release/deps/libtagstudy-d0ae7fbcfce959e4.rmeta: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/session.rs crates/tagstudy/src/tables.rs

crates/tagstudy/src/lib.rs:
crates/tagstudy/src/config.rs:
crates/tagstudy/src/measure.rs:
crates/tagstudy/src/paper.rs:
crates/tagstudy/src/report.rs:
crates/tagstudy/src/session.rs:
crates/tagstudy/src/tables.rs:
