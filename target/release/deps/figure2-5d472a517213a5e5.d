/root/repo/target/release/deps/figure2-5d472a517213a5e5.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-5d472a517213a5e5: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
