/root/repo/target/release/deps/bench-3be1ee50055faad4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-3be1ee50055faad4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-3be1ee50055faad4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
