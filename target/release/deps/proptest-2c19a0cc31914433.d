/root/repo/target/release/deps/proptest-2c19a0cc31914433.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-2c19a0cc31914433: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
