/root/repo/target/release/deps/figure1-25ec736b5d065436.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-25ec736b5d065436: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
