/root/repo/target/release/deps/tagword-1c7398b84b988848.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/release/deps/tagword-1c7398b84b988848: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
