/root/repo/target/release/deps/lispc-3eb75e3504aa7f93.d: crates/lisp/src/bin/lispc.rs

/root/repo/target/release/deps/lispc-3eb75e3504aa7f93: crates/lisp/src/bin/lispc.rs

crates/lisp/src/bin/lispc.rs:
