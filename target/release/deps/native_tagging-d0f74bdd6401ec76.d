/root/repo/target/release/deps/native_tagging-d0f74bdd6401ec76.d: crates/bench/benches/native_tagging.rs

/root/repo/target/release/deps/native_tagging-d0f74bdd6401ec76: crates/bench/benches/native_tagging.rs

crates/bench/benches/native_tagging.rs:
