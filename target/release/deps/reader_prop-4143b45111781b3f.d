/root/repo/target/release/deps/reader_prop-4143b45111781b3f.d: crates/lisp/tests/reader_prop.rs

/root/repo/target/release/deps/reader_prop-4143b45111781b3f: crates/lisp/tests/reader_prop.rs

crates/lisp/tests/reader_prop.rs:
