/root/repo/target/release/deps/all_experiments-7eeb8929758316a2.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-7eeb8929758316a2: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
