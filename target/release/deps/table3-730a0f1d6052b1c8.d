/root/repo/target/release/deps/table3-730a0f1d6052b1c8.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-730a0f1d6052b1c8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
