/root/repo/target/release/deps/generic_arith-56519a6b0bf64d98.d: crates/bench/src/bin/generic_arith.rs

/root/repo/target/release/deps/generic_arith-56519a6b0bf64d98: crates/bench/src/bin/generic_arith.rs

crates/bench/src/bin/generic_arith.rs:
