/root/repo/target/release/deps/tags_repro-3a5ee065968201c9.d: src/lib.rs

/root/repo/target/release/deps/tags_repro-3a5ee065968201c9: src/lib.rs

src/lib.rs:
