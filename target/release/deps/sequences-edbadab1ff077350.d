/root/repo/target/release/deps/sequences-edbadab1ff077350.d: crates/lisp/tests/sequences.rs

/root/repo/target/release/deps/sequences-edbadab1ff077350: crates/lisp/tests/sequences.rs

crates/lisp/tests/sequences.rs:
