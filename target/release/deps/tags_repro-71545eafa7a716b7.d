/root/repo/target/release/deps/tags_repro-71545eafa7a716b7.d: src/lib.rs

/root/repo/target/release/deps/libtags_repro-71545eafa7a716b7.rlib: src/lib.rs

/root/repo/target/release/deps/libtags_repro-71545eafa7a716b7.rmeta: src/lib.rs

src/lib.rs:
