/root/repo/target/release/deps/language-fa3e232965e87c14.d: crates/lisp/tests/language.rs

/root/repo/target/release/deps/language-fa3e232965e87c14: crates/lisp/tests/language.rs

crates/lisp/tests/language.rs:
