/root/repo/target/release/deps/table1-34a202ed815b9686.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-34a202ed815b9686: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
