/root/repo/target/release/deps/differential-1c6138fb0c66b4e2.d: crates/lisp/tests/differential.rs

/root/repo/target/release/deps/differential-1c6138fb0c66b4e2: crates/lisp/tests/differential.rs

crates/lisp/tests/differential.rs:
