/root/repo/target/release/deps/run_all-397a42c839f0987e.d: crates/programs/tests/run_all.rs

/root/repo/target/release/deps/run_all-397a42c839f0987e: crates/programs/tests/run_all.rs

crates/programs/tests/run_all.rs:
