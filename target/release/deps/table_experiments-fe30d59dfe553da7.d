/root/repo/target/release/deps/table_experiments-fe30d59dfe553da7.d: crates/bench/benches/table_experiments.rs

/root/repo/target/release/deps/table_experiments-fe30d59dfe553da7: crates/bench/benches/table_experiments.rs

crates/bench/benches/table_experiments.rs:
