/root/repo/target/release/deps/figure2-690ff20f5d0e38b9.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-690ff20f5d0e38b9: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
