/root/repo/target/release/deps/all_experiments-5cd1e2abe282114a.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-5cd1e2abe282114a: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
