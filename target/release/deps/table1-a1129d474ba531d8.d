/root/repo/target/release/deps/table1-a1129d474ba531d8.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-a1129d474ba531d8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
