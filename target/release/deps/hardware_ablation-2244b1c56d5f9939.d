/root/repo/target/release/deps/hardware_ablation-2244b1c56d5f9939.d: crates/bench/benches/hardware_ablation.rs

/root/repo/target/release/deps/hardware_ablation-2244b1c56d5f9939: crates/bench/benches/hardware_ablation.rs

crates/bench/benches/hardware_ablation.rs:
