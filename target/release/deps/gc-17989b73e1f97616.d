/root/repo/target/release/deps/gc-17989b73e1f97616.d: crates/lisp/tests/gc.rs

/root/repo/target/release/deps/gc-17989b73e1f97616: crates/lisp/tests/gc.rs

crates/lisp/tests/gc.rs:
