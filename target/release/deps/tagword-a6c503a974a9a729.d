/root/repo/target/release/deps/tagword-a6c503a974a9a729.d: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/release/deps/libtagword-a6c503a974a9a729.rlib: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

/root/repo/target/release/deps/libtagword-a6c503a974a9a729.rmeta: crates/tagword/src/lib.rs crates/tagword/src/cost.rs crates/tagword/src/scheme.rs crates/tagword/src/tag.rs crates/tagword/src/nanbox.rs crates/tagword/src/ptr.rs

crates/tagword/src/lib.rs:
crates/tagword/src/cost.rs:
crates/tagword/src/scheme.rs:
crates/tagword/src/tag.rs:
crates/tagword/src/nanbox.rs:
crates/tagword/src/ptr.rs:
