/root/repo/target/release/deps/lispc-3fbfb8e78c072ebd.d: crates/lisp/src/bin/lispc.rs

/root/repo/target/release/deps/lispc-3fbfb8e78c072ebd: crates/lisp/src/bin/lispc.rs

crates/lisp/src/bin/lispc.rs:
