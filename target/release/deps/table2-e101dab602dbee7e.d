/root/repo/target/release/deps/table2-e101dab602dbee7e.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e101dab602dbee7e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
