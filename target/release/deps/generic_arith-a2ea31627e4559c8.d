/root/repo/target/release/deps/generic_arith-a2ea31627e4559c8.d: crates/bench/src/bin/generic_arith.rs

/root/repo/target/release/deps/generic_arith-a2ea31627e4559c8: crates/bench/src/bin/generic_arith.rs

crates/bench/src/bin/generic_arith.rs:
