/root/repo/target/release/deps/properties-d9ac36d70cff4eb1.d: crates/tagword/tests/properties.rs

/root/repo/target/release/deps/properties-d9ac36d70cff4eb1: crates/tagword/tests/properties.rs

crates/tagword/tests/properties.rs:
