/root/repo/target/release/deps/sched_prop-9bccef713267d179.d: crates/mipsx/tests/sched_prop.rs

/root/repo/target/release/deps/sched_prop-9bccef713267d179: crates/mipsx/tests/sched_prop.rs

crates/mipsx/tests/sched_prop.rs:
