/root/repo/target/release/deps/shape-6a2c7f5a852abe85.d: crates/tagstudy/tests/shape.rs

/root/repo/target/release/deps/shape-6a2c7f5a852abe85: crates/tagstudy/tests/shape.rs

crates/tagstudy/tests/shape.rs:
