/root/repo/target/release/deps/tagstudy-1e2b8358d2f4e18e.d: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/tables.rs

/root/repo/target/release/deps/tagstudy-1e2b8358d2f4e18e: crates/tagstudy/src/lib.rs crates/tagstudy/src/config.rs crates/tagstudy/src/measure.rs crates/tagstudy/src/paper.rs crates/tagstudy/src/report.rs crates/tagstudy/src/tables.rs

crates/tagstudy/src/lib.rs:
crates/tagstudy/src/config.rs:
crates/tagstudy/src/measure.rs:
crates/tagstudy/src/paper.rs:
crates/tagstudy/src/report.rs:
crates/tagstudy/src/tables.rs:
