/root/repo/target/release/deps/figure1-dbb67bfecbf4dfea.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-dbb67bfecbf4dfea: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
