/root/repo/target/release/deps/toolchain-cfa71d66f8c59808.d: crates/bench/benches/toolchain.rs

/root/repo/target/release/deps/toolchain-cfa71d66f8c59808: crates/bench/benches/toolchain.rs

crates/bench/benches/toolchain.rs:
