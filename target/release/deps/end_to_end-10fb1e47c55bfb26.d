/root/repo/target/release/deps/end_to_end-10fb1e47c55bfb26.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-10fb1e47c55bfb26: tests/end_to_end.rs

tests/end_to_end.rs:
