/root/repo/target/release/deps/conformance-b48303ddc530bff1.d: crates/conformance/src/lib.rs

/root/repo/target/release/deps/libconformance-b48303ddc530bff1.rlib: crates/conformance/src/lib.rs

/root/repo/target/release/deps/libconformance-b48303ddc530bff1.rmeta: crates/conformance/src/lib.rs

crates/conformance/src/lib.rs:
