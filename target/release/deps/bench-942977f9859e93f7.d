/root/repo/target/release/deps/bench-942977f9859e93f7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-942977f9859e93f7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
