/root/repo/target/release/deps/table3-6e2ffde927acb12d.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-6e2ffde927acb12d: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
