/root/repo/target/release/deps/table2-b1335a230fd32e76.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-b1335a230fd32e76: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
