/root/repo/target/release/deps/scheme_ablation-d7472e71d4b93f64.d: crates/bench/benches/scheme_ablation.rs

/root/repo/target/release/deps/scheme_ablation-d7472e71d4b93f64: crates/bench/benches/scheme_ablation.rs

crates/bench/benches/scheme_ablation.rs:
