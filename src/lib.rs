//! Umbrella crate for the reproduction of Steenkiste & Hennessy,
//! *Tags and Type Checking in LISP: Hardware and Software Approaches* (ASPLOS 1987).
//!
//! This crate re-exports the workspace members so examples and integration tests can
//! reach the whole system through one dependency:
//!
//! - [`tagword`] — tagged-word representations (high-tag, low-tag, arithmetic-safe,
//!   plus modern unsafe pointer tagging and NaN boxing),
//! - [`mipsx`] — the MIPS-X-like instruction-level simulator with the paper's
//!   hardware extensions,
//! - [`lisp`] — the PSL-like Lisp compiler and runtime targeting the simulator,
//! - [`programs`] — the ten benchmark programs,
//! - [`tagstudy`] — the measurement framework regenerating every table and figure.
//!
//! # Quick start
//!
//! ```
//! use tags_repro::lisp::{compile, run, Options};
//!
//! let compiled = compile("(print (plus 40 2))", &Options::default()).unwrap();
//! let outcome = run(&compiled, 1_000_000).unwrap();
//! assert_eq!(outcome.output, "42\n");
//! ```

pub use lisp;
pub use mipsx;
pub use programs;
pub use tagstudy;
pub use tagword;
